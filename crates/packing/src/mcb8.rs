//! The MCB8 multi-capacity bin-packing heuristic.
//!
//! MCB8 is the two-resource instance of the *Multi-Capacity Bin packing*
//! family of Leinberger, Karypis and Kumar (ICPP 1999), in the variant
//! used by Stillwell et al. (Section III-B):
//!
//! 1. split the tasks into a CPU-dominant list (CPU requirement > memory
//!    requirement) and a memory-dominant list (the rest);
//! 2. sort each list by non-increasing *largest* requirement;
//! 3. open nodes one at a time; on the open node, repeatedly pick the
//!    first fitting task from the list that goes **against** the node's
//!    current imbalance (if free memory exceeds free CPU, prefer a
//!    memory-dominant task, and vice versa), falling back to the other
//!    list; when neither list has a fitting task, open the next node.
//!
//! The point of step 3 is to keep each node's two residual capacities in
//! balance so that neither resource is depleted while the other sits idle.
//!
//! The heuristic is deterministic: exact ties in the sort are broken by
//! item id, and the "arbitrary" initial pick on an empty node prefers the
//! list whose head has the larger requirement (big rocks first), then the
//! memory-dominant list.

use crate::item::{Bin, PackItem, Packing, VectorPacker};

/// The MCB8 packer. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcb8;

/// A sorted list of items with O(1) removal and ordered scans that skip
/// removed entries (a singly linked "alive" list over a sorted Vec).
struct AliveList {
    items: Vec<PackItem>,
    /// `next[i]` = index of the next alive item after slot `i`;
    /// slot 0 is a sentinel head, so item `k` lives at slot `k + 1`.
    next: Vec<u32>,
    len: usize,
}

impl AliveList {
    fn new(mut items: Vec<PackItem>) -> Self {
        // Non-increasing max component; ties by id keep determinism.
        items.sort_by(|a, b| {
            b.max_component()
                .total_cmp(&a.max_component())
                .then(a.id.cmp(&b.id))
        });
        let n = items.len();
        let next = (1..=n as u32 + 1).collect();
        AliveList {
            items,
            next,
            len: n,
        }
    }

    /// Largest alive item, if any.
    fn head(&self) -> Option<&PackItem> {
        let first = self.next[0] as usize;
        self.items.get(first - 1)
    }

    /// Find and remove the first (largest) alive item that fits in `bin`.
    fn take_first_fit(&mut self, bin: &Bin) -> Option<PackItem> {
        let mut prev = 0usize;
        loop {
            let cur = self.next[prev] as usize;
            if cur > self.items.len() {
                return None; // reached the tail sentinel
            }
            let item = self.items[cur - 1];
            if bin.fits(&item) {
                self.next[prev] = self.next[cur];
                self.len -= 1;
                return Some(item);
            }
            prev = cur;
        }
    }
}

impl VectorPacker for Mcb8 {
    fn name(&self) -> &'static str {
        "mcb8"
    }

    fn pack(&self, items: &[PackItem], bins: usize) -> Option<Packing> {
        let n = items.len();
        if n == 0 {
            return Some(Packing { bin_of: Vec::new() });
        }
        debug_assert!(
            {
                let mut seen = vec![false; n];
                items.iter().all(|i| {
                    let ok = (i.id as usize) < n && !seen[i.id as usize];
                    if ok {
                        seen[i.id as usize] = true;
                    }
                    ok
                })
            },
            "item ids must be dense 0..n and unique"
        );

        // Cheap necessary conditions before the O(n·m) work.
        let (mut cpu_sum, mut mem_sum) = (0.0, 0.0);
        for it in items {
            if it.cpu > 1.0 + dfrs_core::approx::EPS || it.mem > 1.0 + dfrs_core::approx::EPS {
                return None;
            }
            cpu_sum += it.cpu;
            mem_sum += it.mem;
        }
        let cap = bins as f64 + dfrs_core::approx::EPS;
        if cpu_sum > cap || mem_sum > cap {
            return None;
        }

        let (cpu_dom, mem_dom): (Vec<_>, Vec<_>) =
            items.iter().copied().partition(PackItem::cpu_dominant);
        let mut list_cpu = AliveList::new(cpu_dom);
        let mut list_mem = AliveList::new(mem_dom);

        let mut bin_of = vec![u32::MAX; n];
        let mut placed = 0usize;

        for b in 0..bins {
            if placed == n {
                break;
            }
            let mut bin = Bin::empty();
            loop {
                // Prefer the list that counteracts the bin's imbalance.
                let prefer_mem = if dfrs_core::approx::eq(bin.mem_free(), bin.cpu_free()) {
                    // Balanced (e.g. empty) bin: take the list with the
                    // larger head so big items are placed early.
                    match (list_cpu.head(), list_mem.head()) {
                        (Some(c), Some(m)) => m.max_component() >= c.max_component(),
                        (None, _) => true,
                        (_, None) => false,
                    }
                } else {
                    bin.mem_free() > bin.cpu_free()
                };

                let (first, second) = if prefer_mem {
                    (&mut list_mem, &mut list_cpu)
                } else {
                    (&mut list_cpu, &mut list_mem)
                };

                let picked = first
                    .take_first_fit(&bin)
                    .or_else(|| second.take_first_fit(&bin));

                match picked {
                    Some(item) => {
                        bin.place(&item);
                        bin_of[item.id as usize] = b as u32;
                        placed += 1;
                        if placed == n {
                            break;
                        }
                    }
                    None => break, // nothing fits; open the next bin
                }
            }
        }

        if placed == n {
            let packing = Packing { bin_of };
            debug_assert!(packing.is_valid(items, bins));
            Some(packing)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(reqs: &[(f64, f64)]) -> Vec<PackItem> {
        reqs.iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| PackItem {
                id: i as u32,
                cpu,
                mem,
            })
            .collect()
    }

    #[test]
    fn empty_input_packs_trivially() {
        assert!(Mcb8.pack(&[], 0).is_some());
        assert!(Mcb8.pack(&[], 4).is_some());
    }

    #[test]
    fn single_item_fills_one_bin() {
        let its = items(&[(1.0, 1.0)]);
        let p = Mcb8.pack(&its, 1).unwrap();
        assert_eq!(p.bin_of, vec![0]);
    }

    #[test]
    fn oversized_item_fails() {
        assert!(Mcb8.pack(&items(&[(1.2, 0.1)]), 4).is_none());
        assert!(Mcb8.pack(&items(&[(0.1, 1.2)]), 4).is_none());
    }

    #[test]
    fn total_demand_exceeding_capacity_fails_fast() {
        let its = items(&[(0.9, 0.1), (0.9, 0.1), (0.9, 0.1)]);
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn complementary_items_share_a_bin() {
        // One CPU-heavy and one memory-heavy item fit together; two of the
        // same kind would not. MCB8's balance steering must pair them.
        let its = items(&[(0.9, 0.1), (0.1, 0.9), (0.9, 0.1), (0.1, 0.9)]);
        let p = Mcb8.pack(&its, 2).unwrap();
        assert!(p.is_valid(&its, 2));
        // Each bin must hold exactly one of each kind.
        assert_ne!(p.bin_of[0], p.bin_of[2], "two CPU-heavy items can't share");
        assert_ne!(
            p.bin_of[1], p.bin_of[3],
            "two memory-heavy items can't share"
        );
    }

    #[test]
    fn balance_steering_beats_naive_order() {
        // Four CPU-heavy small-mem + four mem-heavy small-cpu items on 4
        // bins, where any same-kind pairing overflows.
        let its = items(&[
            (0.8, 0.15),
            (0.8, 0.15),
            (0.8, 0.15),
            (0.8, 0.15),
            (0.15, 0.8),
            (0.15, 0.8),
            (0.15, 0.8),
            (0.15, 0.8),
        ]);
        let p = Mcb8.pack(&its, 4).unwrap();
        assert!(p.is_valid(&its, 4));
    }

    #[test]
    fn uses_exactly_enough_bins_for_unit_items() {
        let its = items(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        assert!(Mcb8.pack(&its, 3).is_some());
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn many_small_items_fill_densely() {
        // 40 items of (0.1, 0.1) pack into 4 bins exactly.
        let its = items(&[(0.1, 0.1); 40]);
        let p = Mcb8.pack(&its, 4).unwrap();
        assert!(p.is_valid(&its, 4));
        assert!(Mcb8.pack(&its, 3).is_none(), "needs 4 full bins");
    }

    #[test]
    fn zero_cpu_items_pack_by_memory_only() {
        // Yield 0 turns CPU requirements to 0; packing degenerates to 1-D
        // memory packing.
        let its = items(&[(0.0, 0.5); 6]);
        assert!(Mcb8.pack(&its, 3).is_some());
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn deterministic_across_input_permutations_of_equal_items() {
        let a = items(&[(0.5, 0.3), (0.5, 0.3), (0.3, 0.5), (0.3, 0.5)]);
        let p1 = Mcb8.pack(&a, 2).unwrap();
        let p2 = Mcb8.pack(&a, 2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn respects_memory_even_with_free_cpu() {
        // CPU requirements are 0 but memory binds: 5 half-memory items
        // need 3 bins.
        let its = items(&[(0.0, 0.5); 5]);
        let p = Mcb8.pack(&its, 3).unwrap();
        assert!(p.is_valid(&its, 3));
    }
}
