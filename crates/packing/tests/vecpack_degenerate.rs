//! Properties of the dimension-generic packer and the DRF search.
//!
//! The load-bearing one is **degeneracy**: `McbVec::<2>` must be
//! byte-identical to the hand-specialized `Mcb8` — same feasibility
//! verdict, same `bin_of` assignment — on arbitrary instances. That is
//! the contract that lets the stack carry one generic engine for the
//! N-dimensional schedulers while the golden-trace suite keeps pinning
//! the historical two-resource path.

use dfrs_core::ids::JobId;
use dfrs_packing::{
    assignment_is_valid, drf_feasible_at_share, max_min_dominant_share, DrfJob, DrfSearchScratch,
    Mcb8, McbVec, PackItem, PackScratch, VecItem, VecPackScratch, VectorPacker,
};
use proptest::prelude::*;

fn arb_items3(max_items: usize) -> impl Strategy<Value = Vec<VecItem<3>>> {
    prop::collection::vec((0.0f64..=1.0, 0.001f64..=1.0, 0.0f64..=1.0), 0..max_items).prop_map(
        |reqs| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (cpu, mem, gpu))| VecItem {
                    id: i as u32,
                    req: [cpu, mem, gpu],
                })
                .collect()
        },
    )
}

/// Random 2-dim instances as parallel (PackItem, VecItem<2>) lists.
fn arb_items2(max_items: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..=1.0, 0.001f64..=1.0), 0..max_items)
}

fn arb_drf_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<DrfJob>> {
    prop::collection::vec(
        (1u32..5, 0.05f64..=1.0, 0.05f64..=0.8, 0.0f64..=1.0),
        1..max_jobs,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tasks, cpu, mem, gpu))| DrfJob {
                job: JobId(i as u32),
                tasks,
                cpu_need: cpu,
                mem_req: mem,
                gpu_need: gpu,
            })
            .collect()
    })
}

proptest! {
    /// A successful pack never oversubscribes any bin in any of the
    /// three dimensions.
    #[test]
    fn mcbvec_never_oversubscribes_any_dimension(
        items in arb_items3(40),
        bins in 1usize..12,
    ) {
        if let Some(bin_of) = McbVec::<3>.pack_unit(&items, bins) {
            let caps = vec![[1.0f64; 3]; bins];
            prop_assert!(
                assignment_is_valid(&items, &caps, &bin_of),
                "oversubscribed: items {:?} bins {}", items, bins
            );
        }
    }

    /// Heterogeneous capacity vectors are respected per bin.
    #[test]
    fn mcbvec_respects_heterogeneous_caps(
        items in arb_items3(24),
        caps in prop::collection::vec(
            (0.5f64..=1.0, 0.5f64..=1.0, 0.0f64..=1.0), 1..8
        ),
    ) {
        let caps: Vec<[f64; 3]> = caps.into_iter().map(|(c, m, g)| [c, m, g]).collect();
        let runs: Vec<(VecItem<3>, u32)> = items.iter().map(|&it| (it, 1u32)).collect();
        let mut scratch = VecPackScratch::new();
        if McbVec::<3>.pack_runs_into(&runs, &caps, &mut scratch) {
            prop_assert!(
                assignment_is_valid(&items, &caps, scratch.bin_of()),
                "cap overflow: items {:?} caps {:?}", items, caps
            );
        }
    }

    /// The 2-dim degenerate instance is byte-identical to `Mcb8`: same
    /// verdict, same assignment, item for item.
    #[test]
    fn mcbvec2_is_byte_identical_to_mcb8(
        reqs in arb_items2(48),
        bins in 0usize..12,
    ) {
        let pack_items: Vec<PackItem> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| PackItem { id: i as u32, cpu, mem })
            .collect();
        let vec_items: Vec<VecItem<2>> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| VecItem { id: i as u32, req: [cpu, mem] })
            .collect();
        let mut scratch = PackScratch::new();
        let ok8 = Mcb8.pack_into(&pack_items, bins, &mut scratch);
        let vec_result = McbVec::<2>.pack_unit(&vec_items, bins);
        prop_assert_eq!(ok8, vec_result.is_some(), "verdicts differ: {:?} bins {}", reqs, bins);
        if let Some(bin_of) = vec_result {
            prop_assert_eq!(
                scratch.bin_of(),
                &bin_of[..],
                "assignments differ: {:?} bins {}", reqs, bins
            );
        }
    }

    /// The DRF search returns a valid allocation whose minimum dominant
    /// share is maximal within the binary-search tolerance: every yield
    /// respects the floor and cap, the placement never oversubscribes,
    /// and (unless everyone already runs at full speed) a share target
    /// two tolerances higher is infeasible for the same packer.
    #[test]
    fn drf_min_dominant_share_is_maximal(
        jobs in arb_drf_jobs(8),
        nodes in 1usize..8,
    ) {
        let accuracy = 0.01;
        let min_yield = 0.01;
        let mut scratch = DrfSearchScratch::new();
        let Some(alloc) =
            max_min_dominant_share(&jobs, nodes, accuracy, min_yield, &mut scratch)
        else {
            // Infeasible even at the floor: the floor profile itself
            // must fail to pack.
            prop_assert!(!drf_feasible_at_share(&jobs, nodes, 0.0, min_yield));
            return Ok(());
        };
        // Yields in range, per-job share consistent with the minimum.
        let mut expanded: Vec<VecItem<3>> = Vec::new();
        let mut id = 0u32;
        for (j, (jid, y, places)) in jobs.iter().zip(alloc.allocations.iter()) {
            prop_assert_eq!(j.job, *jid);
            prop_assert_eq!(places.len(), j.tasks as usize);
            prop_assert!(*y >= min_yield - 1e-12 && *y <= 1.0 + 1e-12, "yield {}", y);
            prop_assert!(
                j.dominant_need() * *y >= alloc.min_dominant_share - 1e-12,
                "job below the reported minimum share"
            );
            for _ in 0..j.tasks {
                expanded.push(VecItem {
                    id,
                    req: [
                        (j.cpu_need * *y).min(1.0),
                        j.mem_req,
                        (j.gpu_need * *y).min(1.0),
                    ],
                });
                id += 1;
            }
        }
        let bin_of: Vec<u32> = alloc
            .allocations
            .iter()
            .flat_map(|(_, _, places)| places.iter().copied())
            .collect();
        let caps = vec![[1.0f64; 3]; nodes];
        prop_assert!(assignment_is_valid(&expanded, &caps, &bin_of));
        // Maximality within tolerance, via the bracket certificate: the
        // returned target packs, the terminal infeasible target (at
        // most `accuracy` above it) does not. A share level above a
        // full-speed job's demand cannot change that job's allocation,
        // so maximality is stated on the bisection bracket rather than
        // on `min_dominant_share` itself.
        prop_assert!(drf_feasible_at_share(&jobs, nodes, alloc.target_share, min_yield));
        if let Some(hi) = alloc.infeasible_share {
            prop_assert!(
                !drf_feasible_at_share(&jobs, nodes, hi, min_yield),
                "bracket end still packs: hi {} jobs {:?} nodes {}", hi, jobs, nodes
            );
            prop_assert!(hi - alloc.target_share <= accuracy + 1e-12);
        } else {
            // Fast path: everyone at full speed.
            prop_assert!(alloc.allocations.iter().all(|(_, y, _)| *y == 1.0));
        }
    }
}
