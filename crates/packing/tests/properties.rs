//! Property-based tests for the vector packers and the binary searches.

use dfrs_core::ids::JobId;
use dfrs_packing::{
    max_min_yield, min_max_estimated_stretch, BestFitDecreasing, FirstFitDecreasing, JobLoad, Mcb8,
    PackItem, StretchJob, VectorPacker,
};
use proptest::prelude::*;

fn arb_items(max_items: usize) -> impl Strategy<Value = Vec<PackItem>> {
    prop::collection::vec((0.0f64..=1.0, 0.001f64..=1.0), 0..max_items).prop_map(|reqs| {
        reqs.into_iter()
            .enumerate()
            .map(|(i, (cpu, mem))| PackItem {
                id: i as u32,
                cpu,
                mem,
            })
            .collect()
    })
}

fn arb_job_loads(max_jobs: usize) -> impl Strategy<Value = Vec<JobLoad>> {
    prop::collection::vec((1u32..6, 0.05f64..=1.0, 0.05f64..=1.0), 1..max_jobs).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tasks, cpu, mem))| JobLoad {
                job: JobId(i as u32),
                tasks,
                cpu_need: cpu,
                mem_req: mem,
            })
            .collect()
    })
}

fn arb_stretch_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<StretchJob>> {
    prop::collection::vec(
        (
            1u32..6,
            0.05f64..=1.0,
            0.05f64..=0.8,
            0.0f64..1e5,
            0.0f64..1e4,
        ),
        1..max_jobs,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tasks, cpu, mem, flow, vt))| StretchJob {
                job: JobId(i as u32),
                tasks,
                cpu_need: cpu,
                mem_req: mem,
                flow_time: flow,
                virtual_time: vt,
            })
            .collect()
    })
}

proptest! {
    /// Whatever a packer returns must be a valid packing.
    #[test]
    fn packers_return_only_valid_packings(items in arb_items(60), bins in 1usize..20) {
        for packer in [&Mcb8 as &dyn VectorPacker, &FirstFitDecreasing, &BestFitDecreasing] {
            if let Some(p) = packer.pack(&items, bins) {
                prop_assert!(p.is_valid(&items, bins), "{} invalid", packer.name());
            }
        }
    }

    /// Adding bins never turns a feasible MCB8 instance infeasible.
    #[test]
    fn mcb8_monotone_in_bins(items in arb_items(40), bins in 1usize..16, extra in 1usize..8) {
        if Mcb8.pack(&items, bins).is_some() {
            prop_assert!(Mcb8.pack(&items, bins + extra).is_some());
        }
    }

    /// Scaling every CPU requirement down keeps MCB8 feasible whenever the
    /// packing it found before is reused — i.e. feasibility of the *yield
    /// search* region is genuinely monotone even if the heuristic is not.
    #[test]
    fn shrunk_cpu_requirements_still_pack_with_same_assignment(
        items in arb_items(40),
        bins in 1usize..16,
        factor in 0.0f64..1.0,
    ) {
        if let Some(p) = Mcb8.pack(&items, bins) {
            let shrunk: Vec<PackItem> = items
                .iter()
                .map(|i| PackItem { id: i.id, cpu: i.cpu * factor, mem: i.mem })
                .collect();
            prop_assert!(p.is_valid(&shrunk, bins));
        }
    }

    /// The yield search returns a yield in [floor, 1] and placements that
    /// respect CPU and memory capacities at that yield.
    #[test]
    fn yield_search_result_is_consistent(
        jobs in prop::collection::vec(
            (1u32..6, 0.05f64..=1.0, 0.05f64..=1.0),
            0..12,
        ),
        nodes in 1usize..24,
    ) {
        let loads: Vec<JobLoad> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(tasks, cpu, mem))| JobLoad {
                job: JobId(i as u32),
                tasks,
                cpu_need: cpu,
                mem_req: mem,
            })
            .collect();
        if let Some(a) = max_min_yield(&loads, nodes, &Mcb8, 0.01, 0.01) {
            prop_assert!(a.yield_ >= 0.01 - 1e-12 && a.yield_ <= 1.0);
            // Recompute node usage from placements.
            let mut cpu = vec![0.0; nodes];
            let mut mem = vec![0.0; nodes];
            for (load, (_, placement)) in loads.iter().zip(a.placements.iter()) {
                prop_assert_eq!(placement.len(), load.tasks as usize);
                for &n in placement {
                    cpu[n as usize] += load.cpu_need * a.yield_;
                    mem[n as usize] += load.mem_req;
                }
            }
            for n in 0..nodes {
                prop_assert!(cpu[n] <= 1.0 + 1e-6, "cpu overcommit {}", cpu[n]);
                prop_assert!(mem[n] <= 1.0 + 1e-6, "mem overcommit {}", mem[n]);
            }
        } else {
            // Infeasibility must come from memory, not CPU: at the floor
            // yield the CPU requirements are tiny.
            let total_mem: f64 = loads.iter().map(|l| l.mem_req * l.tasks as f64).sum();
            // A sound necessary condition for feasibility that the
            // heuristic may still miss: if even total memory fits loosely
            // (< half capacity), MCB8 should never fail at the floor.
            prop_assert!(
                total_mem > nodes as f64 * 0.5,
                "search failed on a loosely packed instance (total mem {total_mem}, nodes {nodes})"
            );
        }
    }

    /// The stretch search returns yields within [0.01, 1] and capacities
    /// are respected under the returned per-job yields.
    #[test]
    fn stretch_search_result_is_consistent(
        jobs in prop::collection::vec(
            (1u32..5, 0.05f64..=1.0, 0.05f64..=0.8, 0.0f64..1e5, 0.0f64..1e4),
            0..10,
        ),
        nodes in 2usize..16,
    ) {
        let sjobs: Vec<StretchJob> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(tasks, cpu, mem, flow, vt))| StretchJob {
                job: JobId(i as u32),
                tasks,
                cpu_need: cpu,
                mem_req: mem,
                flow_time: flow,
                virtual_time: vt,
            })
            .collect();
        if let Some(a) = min_max_estimated_stretch(&sjobs, nodes, 600.0, &Mcb8, 0.01) {
            let mut cpu = vec![0.0; nodes];
            let mut mem = vec![0.0; nodes];
            for (j, (_, y, placement)) in sjobs.iter().zip(a.assignments.iter()) {
                prop_assert!(*y >= 0.01 - 1e-12 && *y <= 1.0, "yield {y}");
                for &n in placement {
                    cpu[n as usize] += j.cpu_need * y;
                    mem[n as usize] += j.mem_req;
                }
            }
            for n in 0..nodes {
                prop_assert!(cpu[n] <= 1.0 + 1e-6);
                prop_assert!(mem[n] <= 1.0 + 1e-6);
            }
        }
    }

    /// MCB8 succeeds at least as often as plain first-fit-decreasing on
    /// *feasibility-critical* two-sided instances (the design claim the
    /// paper borrows from Leinberger et al.). We don't require strict
    /// dominance on every instance — only that MCB8 never fails where FFD
    /// succeeds by more than the reverse margin over a batch.
    #[test]
    fn mcb8_is_competitive_with_ffd(seed_items in arb_items(50), bins in 2usize..12) {
        let ffd = FirstFitDecreasing.pack(&seed_items, bins).is_some();
        let mcb = Mcb8.pack(&seed_items, bins).is_some();
        // Statistical claim tested in benches; here only the sanity
        // direction that a *trivially* feasible instance (FFD succeeds)
        // is rarely missed: allow MCB8 failure only when the instance is
        // tight (utilization above 70 % in some dimension).
        if ffd && !mcb {
            let cpu: f64 = seed_items.iter().map(|i| i.cpu).sum();
            let mem: f64 = seed_items.iter().map(|i| i.mem).sum();
            let util = (cpu / bins as f64).max(mem / bins as f64);
            prop_assert!(util > 0.7, "MCB8 failed a loose instance (util {util})");
        }
    }
}

proptest! {
    /// MCB8 placements never exceed per-node CPU or memory capacity,
    /// checked by independent per-node accounting (not via
    /// `Packing::is_valid`, so a bookkeeping bug there cannot hide an
    /// overcommitting placement).
    #[test]
    fn mcb8_never_overcommits_any_node(items in arb_items(60), bins in 1usize..20) {
        if let Some(p) = Mcb8.pack(&items, bins) {
            let mut cpu = vec![0.0f64; bins];
            let mut mem = vec![0.0f64; bins];
            prop_assert_eq!(p.bin_of.len(), items.len());
            for (item, &bin) in items.iter().zip(p.bin_of.iter()) {
                prop_assert!((bin as usize) < bins, "bin {} out of range", bin);
                cpu[bin as usize] += item.cpu;
                mem[bin as usize] += item.mem;
            }
            for b in 0..bins {
                prop_assert!(cpu[b] <= 1.0 + 1e-9, "node {b} CPU overcommitted: {}", cpu[b]);
                prop_assert!(mem[b] <= 1.0 + 1e-9, "node {b} memory overcommitted: {}", mem[b]);
            }
        }
    }

    /// The yield search is monotone in the resources it searches over:
    /// adding nodes never lowers the achieved max-min yield, and never
    /// turns a feasible instance infeasible.
    #[test]
    fn yield_search_monotone_in_nodes(
        jobs in arb_job_loads(10),
        nodes in 1usize..20,
        extra in 1usize..8,
    ) {
        if let Some(a) = max_min_yield(&jobs, nodes, &Mcb8, 0.01, 0.01) {
            let b = max_min_yield(&jobs, nodes + extra, &Mcb8, 0.01, 0.01);
            match b {
                None => prop_assert!(false, "feasible with {nodes} nodes, infeasible with {}", nodes + extra),
                Some(b) => prop_assert!(
                    b.yield_ >= a.yield_ - 1e-9,
                    "yield dropped from {} to {} when adding {extra} nodes",
                    a.yield_, b.yield_
                ),
            }
        }
    }

    /// The yield search is monotone in demand: uniformly scaling every
    /// CPU need down never lowers the achieved yield (the bound searched
    /// over responds monotonically to the load).
    #[test]
    fn yield_search_monotone_in_cpu_demand(
        jobs in arb_job_loads(10),
        nodes in 1usize..20,
        factor in 0.1f64..1.0,
    ) {
        if let Some(a) = max_min_yield(&jobs, nodes, &Mcb8, 0.01, 0.01) {
            let scaled: Vec<JobLoad> =
                jobs.iter().map(|j| JobLoad { cpu_need: j.cpu_need * factor, ..*j }).collect();
            match max_min_yield(&scaled, nodes, &Mcb8, 0.01, 0.01) {
                None => prop_assert!(false, "scaling CPU needs by {factor} broke feasibility"),
                Some(s) => prop_assert!(
                    s.yield_ >= a.yield_ - 1e-9,
                    "yield dropped from {} to {} under lighter demand",
                    a.yield_, s.yield_
                ),
            }
        }
    }

    /// The stretch search is monotone in nodes: adding nodes never makes
    /// the minimized max estimated stretch (the bound it bisects over)
    /// meaningfully worse, and never breaks feasibility. The 2 % band is
    /// the search's own relative accuracy.
    #[test]
    fn stretch_search_monotone_in_nodes(
        sjobs in arb_stretch_jobs(10),
        nodes in 1usize..20,
        extra in 1usize..8,
    ) {
        if let Some(a) = min_max_estimated_stretch(&sjobs, nodes, 600.0, &Mcb8, 0.01) {
            let b = min_max_estimated_stretch(&sjobs, nodes + extra, 600.0, &Mcb8, 0.01);
            match b {
                None => prop_assert!(false, "feasible with {nodes} nodes, infeasible with {}", nodes + extra),
                Some(b) => prop_assert!(
                    b.target <= a.target * 1.02 + 1e-9,
                    "target rose from {} to {} when adding {extra} nodes",
                    a.target, b.target
                ),
            }
        }
    }
}

proptest! {
    /// Soundness of the lower bound: whenever a packer succeeds with b
    /// bins, the lower bound is ≤ b.
    #[test]
    fn lower_bound_is_sound(items in arb_items(40), bins in 1usize..20) {
        use dfrs_packing::lower_bound_bins;
        if Mcb8.pack(&items, bins).is_some() {
            prop_assert!(lower_bound_bins(&items) <= bins);
        }
        if FirstFitDecreasing.pack(&items, bins).is_some() {
            prop_assert!(lower_bound_bins(&items) <= bins);
        }
    }

    /// MCB8 lands within 2× of the lower bound on random instances.
    #[test]
    fn mcb8_quality_band(items in arb_items(30)) {
        use dfrs_packing::{lower_bound_bins, min_bins_with};
        prop_assume!(!items.is_empty());
        let lb = lower_bound_bins(&items);
        let used = min_bins_with(&Mcb8, &items, 4 * lb + 4).expect("ample bins");
        prop_assert!(used <= 2 * lb + 1, "used {} vs lb {}", used, lb);
    }
}
