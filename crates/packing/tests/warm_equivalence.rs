//! The warm-start exactness contract, machine-checked: a warm-started
//! search must return **identical** `(objective, placement)` results to
//! a cold search at every step of a random arrival/completion history.
//!
//! This is the property the golden-trace suite relies on transitively —
//! if warm == cold for arbitrary deltas, enabling the memo inside the
//! `DynMCB8*` schedulers cannot move a byte of any `SimOutcome`.

use dfrs_core::ids::JobId;
use dfrs_packing::{
    max_min_yield, max_min_yield_warm, min_max_estimated_stretch, min_max_estimated_stretch_warm,
    JobLoad, Mcb8, RepackMemo, SearchScratch, StretchJob,
};
use proptest::prelude::*;

/// One event in a synthetic scheduler history.
#[derive(Debug, Clone)]
enum Delta {
    /// A job arrives (tasks, cpu_need, mem_req drawn from the
    /// annotator-like ranges).
    Arrive(u32, f64, f64),
    /// The job at (index modulo live set size) completes.
    Complete(usize),
}

/// One event in a history that also churns the platform: job deltas
/// plus node failures/repairs shrinking and regrowing the available
/// bin count (the schedulers pack over the available-node slice, so a
/// node-set change reaches the searches as a different `nodes` value).
#[derive(Debug, Clone)]
enum ChurnDelta {
    Job(Delta),
    /// Take one node out of service (no-op at 1 available node — the
    /// schedulers guard the empty slice before searching).
    NodeDown,
    /// Return one node to service (no-op at full capacity).
    NodeUp,
}

fn arb_deltas(max_len: usize) -> impl Strategy<Value = Vec<Delta>> {
    // (selector, tasks, cpu, mem, completion index): selector < 3 is an
    // arrival, else a completion — a 3:2 arrive/complete mix keeps the
    // live set growing slowly while still revisiting earlier sets.
    prop::collection::vec(
        (0u32..5, 1u32..5, 0.05f64..=1.0, 0.05f64..=0.6, 0usize..64).prop_map(
            |(sel, t, c, m, k)| {
                if sel < 3 {
                    Delta::Arrive(t, c, m)
                } else {
                    Delta::Complete(k)
                }
            },
        ),
        1..max_len,
    )
}

fn arb_churn_deltas(max_len: usize) -> impl Strategy<Value = Vec<ChurnDelta>> {
    // Mix: ~3/7 arrive, ~2/7 complete, 1/7 node-down, 1/7 node-up.
    prop::collection::vec(
        (0u32..7, 1u32..5, 0.05f64..=1.0, 0.05f64..=0.6, 0usize..64).prop_map(
            |(sel, t, c, m, k)| match sel {
                0..=2 => ChurnDelta::Job(Delta::Arrive(t, c, m)),
                3..=4 => ChurnDelta::Job(Delta::Complete(k)),
                5 => ChurnDelta::NodeDown,
                _ => ChurnDelta::NodeUp,
            },
        ),
        1..max_len,
    )
}

/// Replay `deltas` into a job-set history: each step yields the live
/// job list after the event, with dense ids assigned at arrival (the
/// schedulers' in-system iteration order).
fn histories(deltas: &[Delta]) -> Vec<Vec<(u32, u32, f64, f64)>> {
    let mut live: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut next_id = 0u32;
    let mut out = Vec::new();
    for d in deltas {
        match d {
            Delta::Arrive(tasks, cpu, mem) => {
                live.push((next_id, *tasks, *cpu, *mem));
                live.sort_by_key(|&(id, ..)| id);
                next_id += 1;
            }
            Delta::Complete(k) => {
                if !live.is_empty() {
                    let k = k % live.len();
                    live.remove(k);
                }
            }
        }
        out.push(live.clone());
    }
    out
}

proptest! {
    /// Yield search: warm results equal cold results at every step of a
    /// random arrival/completion history (this exercises both memo hits
    /// — sets recur whenever a complete undoes an arrival — and misses).
    #[test]
    fn warm_yield_search_equals_cold_across_deltas(
        deltas in arb_deltas(24),
        nodes in 1usize..12,
    ) {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        for step in histories(&deltas) {
            let jobs: Vec<JobLoad> = step
                .iter()
                .map(|&(id, tasks, cpu, mem)| JobLoad {
                    job: JobId(id),
                    tasks,
                    cpu_need: cpu,
                    mem_req: mem,
                })
                .collect();
            let cold = max_min_yield(&jobs, nodes, &Mcb8, 0.01, 0.01);
            let warm = max_min_yield_warm(
                &jobs, nodes, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo,
            );
            prop_assert_eq!(warm, cold, "jobs {:?} nodes {}", jobs, nodes);
        }
    }

    /// Stretch search: warm results equal cold results while flow and
    /// virtual times drift between events (this exercises the probe
    /// ring: fully clamped instances recur, everything else must run
    /// fresh).
    #[test]
    fn warm_stretch_search_equals_cold_across_deltas(
        deltas in arb_deltas(16),
        nodes in 1usize..8,
        start_flows in prop::collection::vec(0.0f64..5e4, 64),
        vt_rates in prop::collection::vec(0.0f64..=1.0, 64),
    ) {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let period = 600.0;
        for (tick, step) in histories(&deltas).into_iter().enumerate() {
            let now = tick as f64 * period;
            let jobs: Vec<StretchJob> = step
                .iter()
                .map(|&(id, tasks, cpu, mem)| {
                    let i = id as usize % start_flows.len();
                    StretchJob {
                        job: JobId(id),
                        tasks,
                        cpu_need: cpu,
                        mem_req: mem,
                        flow_time: start_flows[i] + now,
                        virtual_time: vt_rates[i] * now,
                    }
                })
                .collect();
            let cold = min_max_estimated_stretch(&jobs, nodes, period, &Mcb8, 0.01);
            let warm = min_max_estimated_stretch_warm(
                &jobs, nodes, period, &Mcb8, 0.01, &mut scratch, &mut memo,
            );
            prop_assert_eq!(warm, cold, "jobs {:?} nodes {}", jobs, nodes);
        }
    }

    /// Platform churn: NodeDown/NodeUp events interleaved into a random
    /// job history vary the available bin count mid-run — exactly what
    /// the schedulers' available-node slicing feeds the searches. Warm
    /// must equal cold at every step even though the memo is *not*
    /// flushed here (entries are keyed by their complete `(jobs, nodes)`
    /// inputs, so a membership change can never make a replay wrong;
    /// the schedulers' flush on node events is hygiene, not load-
    /// bearing — this test is what proves that).
    #[test]
    fn warm_yield_search_equals_cold_under_node_churn(
        deltas in arb_churn_deltas(32),
        total_nodes in 2usize..12,
    ) {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let mut live: Vec<(u32, u32, f64, f64)> = Vec::new();
        let mut next_id = 0u32;
        let mut avail = total_nodes;
        for d in &deltas {
            match d {
                ChurnDelta::Job(Delta::Arrive(tasks, cpu, mem)) => {
                    live.push((next_id, *tasks, *cpu, *mem));
                    next_id += 1;
                }
                ChurnDelta::Job(Delta::Complete(k)) => {
                    if !live.is_empty() {
                        let k = k % live.len();
                        live.remove(k);
                    }
                }
                ChurnDelta::NodeDown => avail = avail.saturating_sub(1).max(1),
                ChurnDelta::NodeUp => avail = (avail + 1).min(total_nodes),
            }
            let jobs: Vec<JobLoad> = live
                .iter()
                .map(|&(id, tasks, cpu, mem)| JobLoad {
                    job: JobId(id),
                    tasks,
                    cpu_need: cpu,
                    mem_req: mem,
                })
                .collect();
            let cold = max_min_yield(&jobs, avail, &Mcb8, 0.01, 0.01);
            let warm = max_min_yield_warm(
                &jobs, avail, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo,
            );
            prop_assert_eq!(warm, cold, "jobs {:?} avail {}", jobs, avail);
        }
    }

    /// Same churn interleaving for the stretch search's probe ring.
    #[test]
    fn warm_stretch_search_equals_cold_under_node_churn(
        deltas in arb_churn_deltas(20),
        total_nodes in 2usize..8,
        start_flows in prop::collection::vec(0.0f64..5e4, 64),
    ) {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let period = 600.0;
        let mut live: Vec<(u32, u32, f64, f64)> = Vec::new();
        let mut next_id = 0u32;
        let mut avail = total_nodes;
        for (tick, d) in deltas.iter().enumerate() {
            let now = tick as f64 * period;
            match d {
                ChurnDelta::Job(Delta::Arrive(tasks, cpu, mem)) => {
                    live.push((next_id, *tasks, *cpu, *mem));
                    next_id += 1;
                }
                ChurnDelta::Job(Delta::Complete(k)) => {
                    if !live.is_empty() {
                        let k = k % live.len();
                        live.remove(k);
                    }
                }
                ChurnDelta::NodeDown => avail = avail.saturating_sub(1).max(1),
                ChurnDelta::NodeUp => avail = (avail + 1).min(total_nodes),
            }
            let jobs: Vec<StretchJob> = live
                .iter()
                .map(|&(id, tasks, cpu, mem)| {
                    let i = id as usize % start_flows.len();
                    StretchJob {
                        job: JobId(id),
                        tasks,
                        cpu_need: cpu,
                        mem_req: mem,
                        flow_time: start_flows[i] + now,
                        virtual_time: 0.25 * now,
                    }
                })
                .collect();
            let cold = min_max_estimated_stretch(&jobs, avail, period, &Mcb8, 0.01);
            let warm = min_max_estimated_stretch_warm(
                &jobs, avail, period, &Mcb8, 0.01, &mut scratch, &mut memo,
            );
            prop_assert_eq!(warm, cold, "jobs {:?} avail {}", jobs, avail);
        }
    }

    /// A single shared memo survives interleaved node counts without
    /// cross-contamination (every entry is keyed by its full input).
    #[test]
    fn warm_yield_search_keys_on_node_count(
        deltas in arb_deltas(12),
        nodes_a in 1usize..8,
        nodes_b in 8usize..16,
    ) {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        for step in histories(&deltas) {
            let jobs: Vec<JobLoad> = step
                .iter()
                .map(|&(id, tasks, cpu, mem)| JobLoad {
                    job: JobId(id),
                    tasks,
                    cpu_need: cpu,
                    mem_req: mem,
                })
                .collect();
            for nodes in [nodes_a, nodes_b] {
                let cold = max_min_yield(&jobs, nodes, &Mcb8, 0.01, 0.01);
                let warm = max_min_yield_warm(
                    &jobs, nodes, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo,
                );
                prop_assert_eq!(warm, cold);
            }
        }
    }
}
