//! Malformed-input fuzzing for the daemon's NDJSON command parser and
//! the journal scanner: arbitrary byte mutations, truncations, and
//! oversized lines must produce a single typed `error` event (leaving
//! the session bit-for-bit unchanged) or — when the mutation happens to
//! still be a valid command — a normal response. The daemon must keep
//! serving either way; the scanner must return a typed error or a
//! tolerated torn tail, never panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dfrs_core::json::Value;
use dfrs_core::ClusterSpec;
use dfrs_serve::journal::{self, FsyncPolicy, Journal, JournalError};
use dfrs_serve::{Daemon, Flow, MAX_LINE_DEFAULT};
use dfrs_sim::SimConfig;
use proptest::prelude::*;

fn daemon() -> Daemon {
    Daemon::new(
        ClusterSpec::new(4, 4, 8.0).unwrap(),
        "greedy-pmtn",
        SimConfig::default(),
    )
    .unwrap()
}

/// Seed the daemon with real state so "unchanged" is a meaningful claim.
fn seeded() -> Daemon {
    let mut d = daemon();
    for c in [
        r#"{"cmd":"submit","time":0,"tasks":2,"cpu":0.5,"mem":0.25,"runtime":100}"#,
        r#"{"cmd":"submit","time":5,"cpu":1.0,"mem":0.5,"runtime":50}"#,
        r#"{"cmd":"advance","time":20}"#,
    ] {
        let (ev, _) = d.handle_line(c);
        assert!(!ev[0].compact().contains("error"), "seed failed: {ev:?}");
    }
    d
}

fn stats(d: &mut Daemon) -> String {
    d.handle_line(r#"{"cmd":"stats"}"#).0[0].compact()
}

/// Valid command lines the mutations start from.
const BASES: &[&str] = &[
    r#"{"cmd":"submit","time":30,"cpu":0.5,"mem":0.25,"runtime":40}"#,
    r#"{"cmd":"node-down","time":30,"node":1}"#,
    r#"{"cmd":"advance","time":60}"#,
    r#"{"cmd":"drain"}"#,
    r#"{"cmd":"stats"}"#,
    r#"{"cmd":"snapshot"}"#,
];

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

// Test-side unwraps assume a writable temp dir — an environment
// invariant, not a code path under test.
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dfrs-fuzz-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Feed one (possibly garbage) line; check the error/unchanged
/// contract; prove the daemon still serves.
fn check_line(d: &mut Daemon, line: &str) {
    let before = stats(d);
    let (events, flow) = d.handle_line(line);
    assert_ne!(flow, Flow::Crashed, "no chaos armed: {line:?}");
    let errored =
        events.len() == 1 && events[0].get("event").and_then(Value::as_str) == Some("error");
    if errored {
        assert_eq!(stats(d), before, "error must not mutate state: {line:?}");
    }
    // Still serving, whatever happened.
    let (ev, flow) = d.handle_line(r#"{"cmd":"stats"}"#);
    assert_eq!(flow, Flow::Continue);
    assert_eq!(ev[0].get("event").and_then(Value::as_str), Some("stats"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte mutations of valid commands: typed error + unchanged
    /// state, or a valid response — never a wedged or dead daemon.
    #[test]
    fn mutated_commands_never_poison_the_daemon(
        which in 0usize..BASES.len(),
        pos in 0usize..64,
        byte in 0u8..=255,
    ) {
        let mut bytes = BASES[which].as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let line = String::from_utf8_lossy(&bytes).into_owned();
        check_line(&mut seeded(), &line);
    }

    /// Truncations of valid commands (torn client writes).
    #[test]
    fn truncated_commands_never_poison_the_daemon(
        which in 0usize..BASES.len(),
        keep in 0usize..64,
    ) {
        let base = BASES[which];
        let line = &base[..keep.min(base.len())];
        check_line(&mut seeded(), line);
    }

    /// Arbitrary byte soup.
    #[test]
    fn garbage_lines_never_poison_the_daemon(
        bytes in proptest::collection::vec(0u8..=255, 0..80),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        check_line(&mut seeded(), &line);
    }

    /// Random single-byte flips anywhere in a journal segment: the
    /// scanner returns a typed error or tolerates a torn tail — it
    /// never panics, and it never silently accepts altered bytes as a
    /// *different* command list longer than the original.
    #[test]
    fn journal_scan_survives_arbitrary_byte_flips(
        pos in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let dir = tmpdir("flip");
        let mut j = Journal::create(&dir, FsyncPolicy::Never, "{}").unwrap();
        for c in BASES.iter().take(4) {
            j.append(c).unwrap();
        }
        drop(j);
        let seg = dir.join("segment-0000000001.ndjson");
        let mut data = std::fs::read(&seg).unwrap();
        let pos = pos % data.len();
        data[pos] ^= flip;
        std::fs::write(&seg, &data).unwrap();
        match journal::scan(&dir) {
            Ok(rec) => prop_assert!(rec.lines.len() <= 4),
            Err(
                JournalError::Corrupt { .. }
                | JournalError::SeqGap { .. }
                | JournalError::Io { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Oversized lines are rejected with a typed `oversize` error before
/// any parsing, and the session is untouched.
#[test]
fn oversized_lines_get_a_typed_error() {
    let mut d = seeded();
    let before = stats(&mut d);
    let big = format!(
        r#"{{"cmd":"submit","time":30,"cpu":0.5,"mem":0.25,"runtime":40,"pad":"{}"}}"#,
        "x".repeat(MAX_LINE_DEFAULT)
    );
    let (events, flow) = d.handle_line(&big);
    assert_eq!(flow, Flow::Continue);
    assert_eq!(events.len(), 1);
    assert_eq!(
        events[0].get("kind").and_then(Value::as_str),
        Some("oversize")
    );
    assert_eq!(stats(&mut d), before);

    // The cap is configurable; a tiny cap rejects ordinary commands.
    d.set_max_line(8);
    let (events, _) = d.handle_line(r#"{"cmd":"stats"}"#);
    assert_eq!(
        events[0].get("kind").and_then(Value::as_str),
        Some("oversize")
    );
}

/// A duplicated record (valid seal, repeated seq) is a typed SeqGap.
#[test]
fn duplicate_seq_is_a_typed_error() {
    let dir = tmpdir("dup");
    let mut j = Journal::create(&dir, FsyncPolicy::Never, "{}").unwrap();
    j.append("a").unwrap();
    j.append("b").unwrap();
    drop(j);
    let seg = dir.join("segment-0000000001.ndjson");
    let text = std::fs::read_to_string(&seg).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // header, seq1, seq1 again, seq2: the duplicate is line 3.
    std::fs::write(
        &seg,
        format!("{}\n{}\n{}\n{}\n", lines[0], lines[1], lines[1], lines[2]),
    )
    .unwrap();
    match journal::scan(&dir) {
        Err(JournalError::SeqGap { expected, got, .. }) => assert_eq!((expected, got), (2, 1)),
        other => panic!("expected SeqGap, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Swapped records (valid seals, out-of-order seqs) are a typed SeqGap.
#[test]
fn out_of_order_seq_is_a_typed_error() {
    let dir = tmpdir("swap");
    let mut j = Journal::create(&dir, FsyncPolicy::Never, "{}").unwrap();
    j.append("a").unwrap();
    j.append("b").unwrap();
    drop(j);
    let seg = dir.join("segment-0000000001.ndjson");
    let text = std::fs::read_to_string(&seg).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    std::fs::write(&seg, format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1])).unwrap();
    match journal::scan(&dir) {
        Err(JournalError::SeqGap { expected, got, .. }) => assert_eq!((expected, got), (1, 2)),
        other => panic!("expected SeqGap, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
