//! End-to-end golden-transcript tests of the `dfrs-serve` binary: the
//! checked-in command scripts under `tests/golden/` are piped through
//! the real binary and stdout must match the checked-in transcripts
//! byte for byte — the same diff the CI `serve-smoke` job performs
//! with a shell pipeline. Regenerate after an intentional protocol
//! change with:
//!
//! ```text
//! DFRS_GOLDEN_REGEN=1 cargo test -p dfrs_serve --test transcript
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// The fixed invocation the smoke transcript is pinned against (CI
/// uses the same flags).
const SMOKE_ARGS: &[&str] = &[
    "--spec",
    "dynmcb8-per:t=300",
    "--nodes",
    "4",
    "--cores",
    "4",
    "--mem",
    "8",
    "--penalty",
    "300",
];

/// Where the smoke script tells the daemon to write its snapshot (a
/// fixed path so the transcript bytes are reproducible everywhere).
const SNAPSHOT_PATH: &str = "/tmp/dfrs-serve-smoke.snapshot.json";

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Run the binary with `args`, piping `input` through stdin; returns
/// stdout. The daemon must exit cleanly (the scripts end in shutdown).
fn run(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dfrs-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dfrs-serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write commands");
    let out = child.wait_with_output().expect("dfrs-serve runs");
    assert!(
        out.status.success(),
        "dfrs-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 transcript")
}

/// Compare `current` to the pinned transcript (or pin it under
/// `DFRS_GOLDEN_REGEN`), with a first-divergence line diff on drift.
fn check_or_regen(name: &str, current: &str) {
    let path = golden(name);
    if std::env::var_os("DFRS_GOLDEN_REGEN").is_some() {
        std::fs::write(&path, current).expect("write transcript");
        eprintln!("transcript pinned at {}", path.display());
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `DFRS_GOLDEN_REGEN=1 cargo test -p dfrs_serve \
             --test transcript` to create it",
            path.display()
        )
    });
    if pinned != current {
        let divergence = pinned
            .lines()
            .zip(current.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first divergence at line {}:\n  golden:  {}\n  current: {}",
                    i + 1,
                    pinned.lines().nth(i).unwrap_or(""),
                    current.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "one transcript is a prefix of the other ({} vs {} lines)",
                    pinned.lines().count(),
                    current.lines().count()
                )
            });
        panic!(
            "transcript drift against {name}; {divergence}\n\
             if intentional, regenerate with DFRS_GOLDEN_REGEN=1 \
             cargo test -p dfrs_serve --test transcript"
        );
    }
}

#[test]
fn smoke_and_resume_transcripts_match_golden() {
    // Part 1: fresh daemon; writes the snapshot the resume half needs,
    // so both halves run inside this one test (order-independent).
    let commands = std::fs::read_to_string(golden("smoke.commands")).expect("smoke.commands");
    let transcript = run(SMOKE_ARGS, &commands);
    check_or_regen("smoke.transcript", &transcript);
    assert!(
        std::fs::metadata(SNAPSHOT_PATH).is_ok(),
        "smoke script should have written {SNAPSHOT_PATH}"
    );

    // Part 2: resume from that snapshot and replay the second script.
    let commands = std::fs::read_to_string(golden("resume.commands")).expect("resume.commands");
    let transcript = run(&["--restore", SNAPSHOT_PATH], &commands);
    check_or_regen("resume.transcript", &transcript);
}

/// Where the journal smoke scripts keep their write-ahead log and
/// snapshot (fixed paths: the `ready` event echoes the journal dir, so
/// it is part of the pinned bytes).
const JOURNAL_DIR: &str = "/tmp/dfrs-serve-journal-golden";
const JOURNAL_SNAPSHOT: &str = "/tmp/dfrs-serve-journal.snapshot.json";

/// Like [`run`], but the daemon must die on a seeded chaos abort.
fn run_aborts(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dfrs-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dfrs-serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write commands");
    let out = child.wait_with_output().expect("dfrs-serve runs");
    assert!(
        !out.status.success(),
        "the seeded crash point should have aborted the daemon"
    );
    String::from_utf8(out.stdout).expect("utf-8 transcript")
}

#[test]
fn journaled_crash_and_recovery_transcripts_match_golden() {
    // Part 1: journaled daemon with a seeded post-append crash — the
    // 6th journaled command is made durable, then the process aborts
    // (kill -9 semantics) before applying or acknowledging it.
    let _ = std::fs::remove_dir_all(JOURNAL_DIR);
    let commands = std::fs::read_to_string(golden("journal.commands")).expect("journal.commands");
    let args: Vec<&str> = SMOKE_ARGS
        .iter()
        .copied()
        .chain([
            "--journal",
            JOURNAL_DIR,
            "--fsync",
            "interval:2",
            "--chaos",
            "post-append:6",
        ])
        .collect();
    let transcript = run_aborts(&args, &commands);
    check_or_regen("journal.transcript", &transcript);
    assert!(
        std::fs::metadata(JOURNAL_SNAPSHOT).is_ok(),
        "journal script should have written {JOURNAL_SNAPSHOT}"
    );

    // Part 2: recover from the journal (newest snapshot + replay of the
    // unacknowledged suffix) and finish the workload.
    let commands = std::fs::read_to_string(golden("journal-resume.commands"))
        .expect("journal-resume.commands");
    let transcript = run(&["--restore", "--journal", JOURNAL_DIR], &commands);
    check_or_regen("journal-resume.transcript", &transcript);
}

#[test]
fn transcripts_are_run_to_run_deterministic() {
    let commands = std::fs::read_to_string(golden("smoke.commands")).expect("smoke.commands");
    let a = run(SMOKE_ARGS, &commands);
    let b = run(SMOKE_ARGS, &commands);
    assert_eq!(a, b, "same commands, same bytes");
}

#[test]
fn bad_flags_fail_fast_with_usage_hint() {
    let out = Command::new(env!("CARGO_BIN_EXE_dfrs-serve"))
        .arg("--warp-factor")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--help"));

    let out = Command::new(env!("CARGO_BIN_EXE_dfrs-serve"))
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "--spec or --restore is required");
}
