//! The crash-safety contract, tested at every seeded crash point:
//! kill the daemon anywhere in the write-ahead path — before an
//! append, after it, mid-record (torn bytes), or mid-snapshot — and
//! recovery from the journal produces a daemon whose remaining output
//! is byte-identical to one that never crashed.
//!
//! The client protocol for resuming is the standard WAL one: re-send
//! every command that was never acknowledged. A `post-append` crash is
//! the only point where a command is durable but unacknowledged; its
//! events are legitimately lost (the client never got an ack), the
//! state change is not.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dfrs_core::json::Value;
use dfrs_core::ClusterSpec;
use dfrs_serve::journal::{self, FsyncPolicy, JournalError};
use dfrs_serve::{Daemon, Flow, ServeError};
use dfrs_sim::SimConfig;
use proptest::prelude::*;

/// A script exercising every journaled command plus two snapshot
/// rotations, on a periodic rescheduler (tick chains live in the
/// snapshots, the hard case for replay).
const SCRIPT: &[&str] = &[
    r#"{"cmd":"submit","time":0,"tasks":2,"cpu":0.5,"mem":0.25,"runtime":600}"#,
    r#"{"cmd":"submit","time":10,"cpu":1.0,"mem":0.5,"runtime":300}"#,
    r#"{"cmd":"node-down","time":60,"node":1}"#,
    r#"{"cmd":"advance","time":200}"#,
    r#"{"cmd":"node-up","time":250,"node":1}"#,
    r#"{"cmd":"drain"}"#,
    r#"{"cmd":"snapshot"}"#,
    r#"{"cmd":"submit","time":2000,"cpu":0.5,"mem":0.25,"runtime":120}"#,
    r#"{"cmd":"submit","time":2030,"tasks":3,"cpu":0.75,"mem":0.3,"runtime":400}"#,
    r#"{"cmd":"drain"}"#,
    r#"{"cmd":"snapshot"}"#,
    r#"{"cmd":"stats"}"#,
];

const SPEC: &str = "dynmcb8-per:t=300";

fn journaled(line: &str) -> bool {
    ["submit", "node-down", "node-up", "advance", "drain"]
        .iter()
        .any(|c| line.contains(&format!("\"cmd\":\"{c}\"")))
}

fn mutating_count() -> u64 {
    SCRIPT.iter().filter(|l| journaled(l)).count() as u64
}

fn snapshot_count() -> u64 {
    SCRIPT
        .iter()
        .filter(|l| l.contains("\"cmd\":\"snapshot\""))
        .count() as u64
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

// Test-side unwraps assume a writable temp dir — an environment
// invariant, not a code path under test.
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dfrs-chaos-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn daemon_with_journal(dir: &Path) -> Daemon {
    let mut d = Daemon::new(
        ClusterSpec::new(4, 4, 8.0).unwrap(),
        SPEC,
        SimConfig::default(),
    )
    .unwrap();
    d.attach_journal(dir, FsyncPolicy::Always).unwrap();
    d
}

fn compacts(events: &[Value]) -> Vec<String> {
    events.iter().map(Value::compact).collect()
}

/// Run the whole script without chaos: per-command event lines.
fn run_reference(dir: &Path) -> Vec<Vec<String>> {
    let mut d = daemon_with_journal(dir);
    SCRIPT
        .iter()
        .map(|c| {
            let (ev, flow) = d.handle_line(c);
            assert_ne!(flow, Flow::Crashed, "no chaos armed");
            compacts(&ev)
        })
        .collect()
}

/// Run with `plan` armed until the seeded crash fires, recover from the
/// journal, and finish the script. Returns the 0-based index of the
/// crashed command, the per-command events delivered before the crash,
/// and the per-command events delivered after recovery (starting at
/// `crash_index + consumed`).
fn run_with_crash(
    dir: &Path,
    plan: &str,
    consumed: bool,
) -> (usize, Vec<Vec<String>>, Vec<Vec<String>>) {
    let mut d = daemon_with_journal(dir);
    d.set_chaos(plan.parse().unwrap_or_else(|e| panic!("{plan}: {e}")));
    let mut pre = Vec::new();
    let mut crash_at = None;
    for (i, c) in SCRIPT.iter().enumerate() {
        let (ev, flow) = d.handle_line(c);
        if flow == Flow::Crashed {
            assert!(ev.is_empty(), "{plan}: a crash must not acknowledge");
            crash_at = Some(i);
            break;
        }
        pre.push(compacts(&ev));
    }
    let i = crash_at.unwrap_or_else(|| panic!("{plan}: never fired over {SCRIPT:?}"));
    // The binary would abort() here; in-process, dropping the daemon is
    // the kill — nothing below the journal's own syncs survives it.
    drop(d);

    let (mut d, _recovery) =
        Daemon::recover(dir, FsyncPolicy::Always).unwrap_or_else(|e| panic!("{plan}: {e}"));
    let resume = i + usize::from(consumed);
    let post = SCRIPT[resume..]
        .iter()
        .map(|c| {
            let (ev, flow) = d.handle_line(c);
            assert_ne!(flow, Flow::Crashed, "{plan}: chaos must not re-fire");
            compacts(&ev)
        })
        .collect();
    (i, pre, post)
}

fn check_plan_recovers(reference: &[Vec<String>], dir: &Path, plan: &str, consumed: bool) {
    let (i, pre, post) = run_with_crash(dir, plan, consumed);
    assert_eq!(
        pre,
        &reference[..i],
        "{plan}: pre-crash events diverged from the uninterrupted run"
    );
    let resume = i + usize::from(consumed);
    assert_eq!(
        post,
        &reference[resume..],
        "{plan}: post-recovery events diverged from the uninterrupted run"
    );
}

/// The full deterministic crash matrix: every append crashed before,
/// after, and torn (several tear widths), and every snapshot crashed
/// mid-write. Byte-identical convergence at each point.
#[test]
fn every_crash_point_recovers_byte_identically() {
    let refdir = tmpdir("ref");
    let reference = run_reference(&refdir);

    for at in 1..=mutating_count() {
        let dir = tmpdir("pre");
        check_plan_recovers(&reference, &dir, &format!("pre-append:{at}"), false);
        let _ = std::fs::remove_dir_all(&dir);

        let dir = tmpdir("post");
        check_plan_recovers(&reference, &dir, &format!("post-append:{at}"), true);
        let _ = std::fs::remove_dir_all(&dir);

        for keep in [1usize, 7, 40] {
            let dir = tmpdir("torn");
            check_plan_recovers(&reference, &dir, &format!("torn:{at}:{keep}"), false);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    for at in 1..=snapshot_count() {
        for keep in [0usize, 100] {
            let dir = tmpdir("midsnap");
            check_plan_recovers(
                &reference,
                &dir,
                &format!("mid-snapshot:{at}:{keep}"),
                false,
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&refdir);
}

/// Recovery reports what it did: a torn append at the tail shows up as
/// dropped bytes, and replay counts match the journal suffix.
#[test]
fn recovery_reports_the_torn_tail() {
    let dir = tmpdir("report");
    let mut d = daemon_with_journal(&dir);
    d.set_chaos("torn:3:9".parse().unwrap());
    let mut fired = false;
    for c in SCRIPT {
        if d.handle_line(c).1 == Flow::Crashed {
            fired = true;
            break;
        }
    }
    assert!(fired);
    drop(d);
    let (_d, recovery) = Daemon::recover(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovery.covered, 0);
    assert_eq!(recovery.replayed, 2, "two whole records before the tear");
    assert_eq!(recovery.last_seq, 2);
    let torn = recovery.torn.clone().expect("torn tail reported");
    assert!(torn.dropped > 0);
    // The banner carries the same numbers.
    let banner = Daemon::recovered_event(&recovery).compact();
    assert!(banner.contains(r#""event":"recovered""#), "{banner}");
    assert!(banner.contains(r#""replayed":2"#), "{banner}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damage a torn tail cannot explain is a hard, typed error — recovery
/// refuses to guess.
#[test]
fn corruption_fails_recovery_with_typed_errors() {
    let dir = tmpdir("corrupt");
    let mut d = daemon_with_journal(&dir);
    for c in &SCRIPT[..4] {
        d.handle_line(c);
    }
    drop(d);
    // Flip a byte in the middle of the first segment (line 2 of 5).
    let seg = dir.join("segment-0000000001.ndjson");
    let mut data = std::fs::read(&seg).unwrap();
    let first_nl = data.iter().position(|&b| b == b'\n').unwrap();
    data[first_nl + 10] ^= 0x20;
    std::fs::write(&seg, &data).unwrap();
    match Daemon::recover(&dir, FsyncPolicy::Always).map(|_| ()) {
        Err(ServeError::Journal(JournalError::Corrupt { line, .. })) => assert_eq!(line, 2),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // An empty directory is typed too.
    let empty = tmpdir("empty");
    match Daemon::recover(&empty, FsyncPolicy::Always).map(|_| ()) {
        Err(ServeError::Journal(JournalError::NoJournal { .. })) => {}
        other => panic!("expected NoJournal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

/// A crash-free journaled run leaves a journal that replays to the
/// same state: scan it, recover, and the stats line must match.
#[test]
fn crash_free_journal_replays_to_the_same_state() {
    let dir = tmpdir("replay");
    let mut d = daemon_with_journal(&dir);
    let mut last_stats = String::new();
    for c in SCRIPT {
        let (ev, _) = d.handle_line(c);
        if c.contains("\"cmd\":\"stats\"") {
            last_stats = ev[0].compact();
        }
    }
    drop(d);
    let rec = journal::scan(&dir).unwrap();
    assert_eq!(rec.torn, None);
    assert_eq!(rec.covered, mutating_count(), "final snapshot covers all");
    let (mut d, recovery) = Daemon::recover(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovery.replayed, 0, "nothing after the last snapshot");
    let (ev, _) = d.handle_line(r#"{"cmd":"stats"}"#);
    assert_eq!(ev[0].compact(), last_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The batched command path must be invisible in the output: any
/// chunking of the script through `handle_batch` emits the same event
/// bytes as the per-line loop, and leaves the same journal behind.
#[test]
fn batched_path_matches_sequential_bytes_and_journal() {
    let seq_dir = tmpdir("seq");
    let mut seq_events = Vec::new();
    {
        let mut d = daemon_with_journal(&seq_dir);
        for c in SCRIPT {
            let (ev, flow) = d.handle_line(c);
            assert_ne!(flow, Flow::Crashed);
            seq_events.extend(compacts(&ev));
        }
    }
    let seq_journal = journal::scan(&seq_dir).unwrap();

    for chunk in [1usize, 2, 3, 5, SCRIPT.len()] {
        let dir = tmpdir("batch");
        let mut events = Vec::new();
        {
            let mut d = daemon_with_journal(&dir);
            for lines in SCRIPT.chunks(chunk) {
                for (ev, flow) in d.handle_batch(lines) {
                    assert_ne!(flow, Flow::Crashed);
                    events.extend(compacts(&ev));
                }
            }
        }
        assert_eq!(events, seq_events, "chunk size {chunk}");
        let rec = journal::scan(&dir).unwrap();
        assert_eq!(rec.lines, seq_journal.lines, "chunk size {chunk}");
        assert_eq!(rec.last_seq, seq_journal.last_seq, "chunk size {chunk}");
        assert_eq!(rec.covered, seq_journal.covered, "chunk size {chunk}");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&seq_dir);
}

/// The crash window only the batched path has: commands staged after a
/// group-commit append but never acknowledged or applied. The journal
/// (drained by the drop, as a real crash's completed writes would be)
/// replays them exactly once; resuming the script after the crashed
/// command converges on the reference state for every staged position.
#[test]
fn batch_crash_between_append_and_ack_recovers() {
    // Reference: the final stats of an undisturbed batched run.
    let refdir = tmpdir("bref");
    let want_stats = {
        let mut d = daemon_with_journal(&refdir);
        let out = d.handle_batch(SCRIPT);
        compacts(&out.last().unwrap().0)
    };

    for at in 1..=mutating_count() {
        let dir = tmpdir("bcrash");
        let mut d = daemon_with_journal(&dir);
        d.set_chaos(format!("batch-crash:{at}").parse().unwrap());
        // The whole script in ONE batch: every journaled command since
        // the last boundary is staged (appended asynchronously) and
        // none of them applied when the crash fires.
        let out = d.handle_batch(SCRIPT);
        let (ev, flow) = out.last().unwrap();
        assert_eq!(*flow, Flow::Crashed, "batch-crash:{at} must fire");
        assert!(ev.is_empty(), "a crash must not acknowledge");
        // Dropping the daemon is the kill; the journal drains its
        // writer queue, so every staged command is durable.
        drop(d);

        let (mut d, recovery) = Daemon::recover(&dir, FsyncPolicy::Always)
            .unwrap_or_else(|e| panic!("batch-crash:{at}: {e}"));
        assert_eq!(
            recovery.last_seq, at,
            "batch-crash:{at}: every staged command is durable, nothing more"
        );
        assert_eq!(
            recovery.replayed,
            at - recovery.covered,
            "batch-crash:{at}: the whole suffix replays exactly once"
        );
        // Standard WAL client protocol: resume after the last staged
        // (= now replayed) command.
        let crash_line = SCRIPT
            .iter()
            .enumerate()
            .filter(|(_, l)| journaled(l))
            .nth(at as usize - 1)
            .map(|(i, _)| i)
            .unwrap();
        let out = d.handle_batch(&SCRIPT[crash_line + 1..]);
        let got = compacts(&out.last().unwrap().0);
        assert_eq!(got, want_stats, "batch-crash:{at}: state diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&refdir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of the matrix: any crash point, any tear width —
    /// recovery converges to the reference bytes.
    #[test]
    fn any_seeded_crash_converges(
        at in 1u64..=9,
        keep in 1usize..300,
        kind in prop::sample::select(vec!["pre-append", "post-append", "torn"]),
    ) {
        prop_assume!(at <= mutating_count());
        let refdir = tmpdir("prop-ref");
        let reference = run_reference(&refdir);
        let plan = match kind {
            "torn" => format!("torn:{at}:{keep}"),
            k => format!("{k}:{at}"),
        };
        let dir = tmpdir("prop");
        check_plan_recovers(&reference, &dir, &plan, kind == "post-append");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&refdir);
    }
}
