//! Unix-socket transport test: the same protocol served over
//! `--socket` must behave exactly like stdin/stdout, survive a client
//! hanging up, and exit on `shutdown`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn connect(path: &str, child: &mut Child) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => {
                if let Some(status) = child.try_wait().expect("try_wait") {
                    panic!("daemon exited early: {status}");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("cannot connect to {path}: {e}"),
        }
    }
}

fn send(stream: &mut UnixStream, reader: &mut impl BufRead, line: &str) -> Vec<String> {
    writeln!(stream, "{line}").expect("write command");
    stream.flush().expect("flush");
    // One response line per event; commands used here emit a known
    // terminal event, so read until we see it.
    let mut events = Vec::new();
    loop {
        let mut buf = String::new();
        if reader.read_line(&mut buf).expect("read event") == 0 {
            return events;
        }
        let done = [
            "\"submitted\"",
            "\"drained\"",
            "\"stats\"",
            "\"shutdown\"",
            "\"error\"",
        ]
        .iter()
        .any(|t| buf.contains(t));
        events.push(buf.trim_end().to_string());
        if done {
            return events;
        }
    }
}

#[test]
fn socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("dfrs-serve-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sock = dir.join("daemon.sock");
    let sock = sock.to_str().expect("utf-8 path");

    let mut child = Command::new(env!("CARGO_BIN_EXE_dfrs-serve"))
        .args(["--spec", "greedy-pmtn", "--nodes", "4", "--socket", sock])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // First client: submit a job, then hang up mid-session.
    {
        let mut stream = connect(sock, &mut child);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut ready = String::new();
        reader.read_line(&mut ready).expect("ready banner");
        assert!(ready.contains("\"event\":\"ready\""), "{ready}");
        let events = send(
            &mut stream,
            &mut reader,
            r#"{"cmd":"submit","time":0,"cpu":0.5,"mem":0.2,"runtime":50}"#,
        );
        assert!(
            events.iter().any(|l| l.contains("\"submitted\"")),
            "{events:?}"
        );
    }

    // Second client: the session survived the hang-up — the job is
    // still live — and shutdown stops the daemon.
    let mut stream = connect(sock, &mut child);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("ready banner");
    assert!(ready.contains("\"admitted\":1"), "{ready}");
    let events = send(&mut stream, &mut reader, r#"{"cmd":"drain"}"#);
    assert!(
        events.iter().any(|l| l.contains("\"drained\"")),
        "{events:?}"
    );
    let events = send(&mut stream, &mut reader, r#"{"cmd":"shutdown"}"#);
    assert!(
        events.iter().any(|l| l.contains("\"shutdown\"")),
        "{events:?}"
    );

    let status = child.wait().expect("daemon exits");
    assert!(status.success());
    assert!(!std::path::Path::new(sock).exists(), "socket file removed");
}
