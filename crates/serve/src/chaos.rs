//! Deterministic fault injection for the crash-safety harness.
//!
//! A [`ChaosPlan`] names one seeded crash point in the daemon's
//! write-ahead path: before a journal append (the command is lost,
//! as it should be — it was never acknowledged), after one (the
//! command is durable but unacknowledged), mid-append (a torn record,
//! dropped on recovery), or mid-snapshot (a half-written temp file,
//! ignored on recovery). The `dfrs-serve` binary takes a plan via
//! `--chaos` and emulates `kill -9` with [`std::process::abort`] when
//! it fires; in-process tests get [`crate::Flow::Crashed`] and drop
//! the daemon.
//!
//! Plans are fully deterministic — they count commands, not time — so
//! every crash point is reproducible and the recovery proptest can
//! assert byte-identical convergence.

use std::fmt;
use std::str::FromStr;

/// Where in the write-ahead path to crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the journal append: the command vanishes entirely.
    PreAppend,
    /// After the append (and its sync): durable but never applied or
    /// acknowledged.
    PostAppend,
    /// Mid-append: only the first `keep` bytes of the record reach the
    /// file — a torn final record.
    TornAppend {
        /// Bytes of the record (newline included) that survive.
        keep: usize,
    },
    /// Mid-snapshot: the snapshot temp file is half-written and never
    /// renamed into place.
    MidSnapshot {
        /// Bytes of the snapshot text that survive.
        keep: usize,
    },
    /// Between a group-commit append and its ack: the command (and any
    /// earlier command staged in the same batch) may be durable, but
    /// none of them were applied or acknowledged. Only the batched
    /// command path (`Daemon::handle_batch`) stages commands, so this
    /// is the crash point the per-line path cannot reach; sequential
    /// dispatch degrades it to [`CrashPoint::PostAppend`].
    BatchCrash,
}

/// One seeded crash: fire `point` at the `at`-th triggering event
/// (1-based; journaled commands for the append points, snapshot
/// commands for [`CrashPoint::MidSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The injection point.
    pub point: CrashPoint,
    /// Which occurrence triggers it (1-based).
    pub at: u64,
}

impl FromStr for ChaosPlan {
    type Err = String;

    /// `pre-append:N`, `post-append:N`, `torn:N:K` (K surviving bytes),
    /// `mid-snapshot:N:K`, `batch-crash:N`.
    fn from_str(s: &str) -> Result<Self, String> {
        let bad = || {
            format!(
            "bad chaos spec {s:?} (expected pre-append:N, post-append:N, torn:N:K, mid-snapshot:N:K, or batch-crash:N)"
        )
        };
        let parts: Vec<&str> = s.split(':').collect();
        let num = |i: usize, min: u64| -> Result<u64, String> {
            match parts.get(i).map(|p| p.parse::<u64>()) {
                Some(Ok(n)) if n >= min => Ok(n),
                _ => Err(bad()),
            }
        };
        match (parts.first().copied(), parts.len()) {
            (Some("pre-append"), 2) => Ok(ChaosPlan {
                point: CrashPoint::PreAppend,
                at: num(1, 1)?,
            }),
            (Some("post-append"), 2) => Ok(ChaosPlan {
                point: CrashPoint::PostAppend,
                at: num(1, 1)?,
            }),
            (Some("torn"), 3) => Ok(ChaosPlan {
                point: CrashPoint::TornAppend {
                    keep: num(2, 1)? as usize,
                },
                at: num(1, 1)?,
            }),
            (Some("mid-snapshot"), 3) => Ok(ChaosPlan {
                point: CrashPoint::MidSnapshot {
                    keep: num(2, 0)? as usize,
                },
                at: num(1, 1)?,
            }),
            (Some("batch-crash"), 2) => Ok(ChaosPlan {
                point: CrashPoint::BatchCrash,
                at: num(1, 1)?,
            }),
            _ => Err(bad()),
        }
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.point {
            CrashPoint::PreAppend => write!(f, "pre-append:{}", self.at),
            CrashPoint::PostAppend => write!(f, "post-append:{}", self.at),
            CrashPoint::TornAppend { keep } => write!(f, "torn:{}:{keep}", self.at),
            CrashPoint::MidSnapshot { keep } => write!(f, "mid-snapshot:{}:{keep}", self.at),
            CrashPoint::BatchCrash => write!(f, "batch-crash:{}", self.at),
        }
    }
}

/// What the daemon should do for the append it is about to make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No injection here.
    Proceed,
    /// Crash without touching the journal.
    CrashBefore,
    /// Append (durably), then crash before applying.
    CrashAfter,
    /// Write a torn prefix of the record, then crash.
    Torn {
        /// Surviving byte count.
        keep: usize,
    },
}

/// Counts trigger occurrences and fires the plan exactly once.
#[derive(Debug, Clone)]
pub struct ChaosState {
    plan: ChaosPlan,
    appends: u64,
    snapshots: u64,
}

impl ChaosState {
    /// Arm `plan`.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosState {
            plan,
            appends: 0,
            snapshots: 0,
        }
    }

    /// Called once per journaled command, before the append.
    pub fn on_append(&mut self) -> ChaosAction {
        self.appends += 1;
        if self.appends != self.plan.at {
            return ChaosAction::Proceed;
        }
        match self.plan.point {
            CrashPoint::PreAppend => ChaosAction::CrashBefore,
            CrashPoint::PostAppend | CrashPoint::BatchCrash => ChaosAction::CrashAfter,
            CrashPoint::TornAppend { keep } => ChaosAction::Torn { keep },
            CrashPoint::MidSnapshot { .. } => ChaosAction::Proceed,
        }
    }

    /// Whether the armed plan fires between a batched append and its
    /// group-commit ack. Such a plan is the only chaos the batched
    /// command path handles itself; every other plan forces commands
    /// back onto the sequential path, whose crash semantics the CI
    /// transcripts pin.
    pub fn batch_crash_plan(&self) -> bool {
        matches!(self.plan.point, CrashPoint::BatchCrash)
    }

    /// Called once per snapshot command; `Some(keep)` means write a
    /// torn snapshot temp file of `keep` bytes, then crash.
    pub fn on_snapshot(&mut self) -> Option<usize> {
        self.snapshots += 1;
        match self.plan.point {
            CrashPoint::MidSnapshot { keep } if self.snapshots == self.plan.at => Some(keep),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_roundtrip() {
        for (s, plan) in [
            (
                "pre-append:3",
                ChaosPlan {
                    point: CrashPoint::PreAppend,
                    at: 3,
                },
            ),
            (
                "post-append:1",
                ChaosPlan {
                    point: CrashPoint::PostAppend,
                    at: 1,
                },
            ),
            (
                "torn:4:7",
                ChaosPlan {
                    point: CrashPoint::TornAppend { keep: 7 },
                    at: 4,
                },
            ),
            (
                "mid-snapshot:1:100",
                ChaosPlan {
                    point: CrashPoint::MidSnapshot { keep: 100 },
                    at: 1,
                },
            ),
            (
                "batch-crash:5",
                ChaosPlan {
                    point: CrashPoint::BatchCrash,
                    at: 5,
                },
            ),
        ] {
            assert_eq!(s.parse::<ChaosPlan>().as_ref(), Ok(&plan), "{s}");
            assert_eq!(plan.to_string(), s);
        }
        for bad in [
            "",
            "boom",
            "pre-append",
            "pre-append:0",
            "pre-append:x",
            "pre-append:1:2",
            "torn:1",
            "torn:1:0",
            "mid-snapshot:0:5",
            "batch-crash:0",
            "batch-crash:1:2",
        ] {
            assert!(bad.parse::<ChaosPlan>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fires_exactly_once_at_the_seeded_occurrence() {
        let mut c = ChaosState::new("post-append:2".parse().unwrap());
        assert_eq!(c.on_append(), ChaosAction::Proceed);
        assert_eq!(c.on_append(), ChaosAction::CrashAfter);
        assert_eq!(c.on_append(), ChaosAction::Proceed);
        assert_eq!(c.on_snapshot(), None);

        let mut c = ChaosState::new("mid-snapshot:2:9".parse().unwrap());
        assert_eq!(c.on_append(), ChaosAction::Proceed);
        assert_eq!(c.on_snapshot(), None);
        assert_eq!(c.on_snapshot(), Some(9));
        assert_eq!(c.on_snapshot(), None);
    }
}
