//! Scheduler fault containment: a [`Scheduler`] wrapper that stops a
//! panicking tick or an invalid plan from poisoning the daemon.
//!
//! The engine's own plan validation ([`dfrs_sim::check_plan`]) panics
//! on a bad plan when `validate` is on — correct for batch experiments
//! (a bad plan is a scheduler bug and the run is worthless), fatal for
//! a long-lived daemon. [`QuarantineGuard`] validates every plan
//! *before* the engine sees it; offending entries are stripped, the
//! attributable job is noted, and the daemon (which shares the note
//! log) cancels the job and reports a typed `error` event — the
//! session keeps serving. A panic inside the scheduler is caught the
//! same way and degrades to a no-op plan.
//!
//! Everything here runs inside the session command loop, so quarantine
//! decisions replay deterministically from the journal.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use dfrs_core::ids::JobId;
use dfrs_sim::{check_plan, Plan, PlanEntry, RepackStats, SchedEvent, Scheduler, SimState};

/// One containment decision, for the daemon to report and act on.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// The job the fault was attributed to (canceled by the daemon);
    /// `None` when no single job is attributable (tick panic, or a
    /// capacity fault with no placed entry on the named node).
    pub job: Option<JobId>,
    /// Human-readable cause.
    pub reason: String,
}

/// Shared note log between the guard (writer) and the daemon (reader).
#[derive(Clone, Default)]
pub struct QuarantineLog(Arc<Mutex<Vec<Quarantine>>>);

impl QuarantineLog {
    fn push(&self, q: Quarantine) {
        self.0.lock().expect("quarantine log poisoned").push(q);
    }

    /// Drain every pending note.
    pub fn take(&self) -> Vec<Quarantine> {
        std::mem::take(&mut *self.0.lock().expect("quarantine log poisoned"))
    }

    /// True when no notes are pending.
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("quarantine log poisoned").is_empty()
    }
}

/// The wrapper installed around every daemon scheduler.
pub struct QuarantineGuard {
    inner: Box<dyn Scheduler>,
    log: QuarantineLog,
}

impl QuarantineGuard {
    /// Wrap `inner`, sharing `log` with the daemon.
    pub fn new(inner: Box<dyn Scheduler>, log: QuarantineLog) -> Self {
        QuarantineGuard { inner, log }
    }
}

/// Strip every entry and timer belonging to `job` from `plan`.
fn strip(plan: &mut Plan, job: JobId) {
    plan.entries.retain(|e| match e {
        PlanEntry::Run { job: j, .. } | PlanEntry::Pause { job: j } => *j != job,
    });
    plan.timers.retain(|(j, _)| *j != job);
}

/// The job to blame for a capacity fault on `node`: the last run entry
/// placing a task there (deterministic, and the marginal overcommitter
/// under the engine's in-order application).
fn capacity_culprit(plan: &Plan, node: dfrs_core::ids::NodeId) -> Option<JobId> {
    plan.entries.iter().rev().find_map(|e| match e {
        PlanEntry::Run { job, placement, .. } if placement.contains(&node) => Some(*job),
        _ => None,
    })
}

impl Scheduler for QuarantineGuard {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn period(&self) -> Option<f64> {
        self.inner.period()
    }

    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        let mut plan = match catch_unwind(AssertUnwindSafe(|| self.inner.on_event(ev, state))) {
            Ok(plan) => plan,
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                self.log.push(Quarantine {
                    job: None,
                    reason: format!("scheduler panicked on {ev:?}: {detail}"),
                });
                return Plan::noop();
            }
        };
        // Sanitize until valid. Each round removes at least one entry
        // or timer (or empties the plan outright), so this terminates.
        loop {
            let err = match check_plan(state, &plan) {
                Ok(()) => return plan,
                Err(e) => e,
            };
            let job = err
                .job()
                .or_else(|| err.node().and_then(|n| capacity_culprit(&plan, n)));
            self.log.push(Quarantine {
                job,
                reason: format!("invalid plan: {err}"),
            });
            match job {
                Some(j) => strip(&mut plan, j),
                None => {
                    // Nothing attributable: drop the whole plan rather
                    // than guess.
                    return Plan::noop();
                }
            }
        }
    }

    fn repack_stats(&self) -> Option<RepackStats> {
        self.inner.repack_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::ids::NodeId;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{SimConfig, SimSession};

    /// Misbehaves on demand: panics on tick `panic_at`, emits an
    /// invalid placement for job `bad_job`, otherwise runs everything
    /// pending on node 0.
    struct Saboteur {
        ticks: u32,
        panic_at: Option<u32>,
        bad_job: Option<JobId>,
    }

    impl Scheduler for Saboteur {
        fn name(&self) -> String {
            "saboteur".into()
        }
        fn period(&self) -> Option<f64> {
            Some(100.0)
        }
        fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
            if matches!(ev, SchedEvent::Tick) {
                self.ticks += 1;
                if self.panic_at == Some(self.ticks) {
                    panic!("sabotage at tick {}", self.ticks);
                }
            }
            let mut plan = Plan::noop();
            for j in state.jobs_in_system() {
                if j.status != dfrs_sim::JobStatus::Pending {
                    continue;
                }
                let id = j.spec.id;
                if self.bad_job == Some(id) {
                    // Nonexistent node: an invalid plan.
                    plan = plan.run(id, vec![NodeId(999); j.spec.tasks as usize], 1.0);
                } else {
                    plan = plan.run(id, vec![NodeId(0); j.spec.tasks as usize], 1.0);
                }
            }
            plan
        }
    }

    fn session(sab: Saboteur, log: QuarantineLog) -> SimSession {
        SimSession::new(
            ClusterSpec::new(4, 4, 8.0).unwrap(),
            "saboteur",
            Box::new(QuarantineGuard::new(Box::new(sab), log)),
            SimConfig::default(),
        )
    }

    fn job(id: u32, t: f64) -> JobSpec {
        JobSpec::new(JobId(id), t, 1, 0.5, 0.2, 50.0).unwrap()
    }

    #[test]
    fn invalid_plans_are_stripped_and_noted() {
        let log = QuarantineLog::default();
        let sab = Saboteur {
            ticks: 0,
            panic_at: None,
            bad_job: Some(JobId(1)),
        };
        let mut s = session(sab, log.clone());
        s.submit(job(0, 0.0)).unwrap();
        s.submit(job(1, 1.0)).unwrap();
        // j1's bad entry was stripped on every round it appeared in;
        // j0 is unaffected and completes.
        let notes = log.take();
        assert!(!notes.is_empty());
        assert!(notes.iter().all(|n| n.job == Some(JobId(1))), "{notes:?}");
        assert!(notes[0].reason.contains("nonexistent"), "{notes:?}");
        s.cancel(JobId(1)).unwrap();
        s.drain().unwrap();
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn tick_panics_degrade_to_noop_plans() {
        let log = QuarantineLog::default();
        let sab = Saboteur {
            ticks: 0,
            panic_at: Some(1),
            bad_job: None,
        };
        let mut s = session(sab, log.clone());
        s.submit(job(0, 0.0)).unwrap();
        // Tick 1 (t=100) panics; the job is already running by then and
        // completes regardless.
        s.advance_to(150.0).unwrap();
        let notes = log.take();
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert_eq!(notes[0].job, None);
        assert!(notes[0].reason.contains("sabotage"), "{notes:?}");
        s.drain().unwrap();
        assert_eq!(s.completed(), 1);
    }
}
