//! `dfrs-serve` — the DFRS scheduler as a long-lived daemon.
//!
//! Reads NDJSON commands from stdin (default) or a Unix socket and
//! writes NDJSON events; see the crate docs of `dfrs_serve` for the
//! command set. Examples:
//!
//! ```text
//! printf '%s\n' \
//!   '{"cmd":"submit","time":0,"cpu":0.5,"mem":0.25,"runtime":600}' \
//!   '{"cmd":"drain"}' '{"cmd":"shutdown"}' \
//!   | dfrs-serve --spec dynmcb8-per:t=300 --nodes 4
//!
//! dfrs-serve --spec dynmcb8-drf --socket /tmp/dfrs.sock
//! dfrs-serve --restore /tmp/checkpoint.json
//! ```

use std::io::{BufRead, BufReader, Write};
use std::process::exit;

use dfrs_core::ClusterSpec;
use dfrs_serve::{Daemon, Flow};
use dfrs_sim::SimConfig;

const USAGE: &str = "\
dfrs-serve: streaming DFRS scheduler daemon (NDJSON in, NDJSON out)

USAGE:
  dfrs-serve --spec SPEC [OPTIONS]
  dfrs-serve --restore PATH [OPTIONS]

OPTIONS:
  --spec SPEC       scheduler registry spec (e.g. fcfs, greedy-pmtn,
                    dynmcb8-per:t=300, dynmcb8-drf)
  --restore PATH    resume from a dfrs-snapshot-v1 file written by the
                    snapshot command (the spec is read from the file)
  --nodes N         cluster nodes            [default: 128]
  --cores N         cores per node           [default: 4]
  --mem GB          memory per node in GB    [default: 8]
  --penalty SECS    rescheduling penalty     [default: 0]
  --shards N        partition the cluster and run one scheduler
                    instance per shard (wraps SPEC in
                    sharded:SPEC:shards=N; 1 leaves SPEC unchanged)
  --validate        check every plan and engine invariant
  --socket PATH     serve on a Unix socket instead of stdin/stdout
  --help            this text
";

struct Args {
    spec: Option<String>,
    restore: Option<String>,
    nodes: u32,
    cores: u32,
    mem: f64,
    penalty: f64,
    shards: u32,
    validate: bool,
    socket: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let synthetic = ClusterSpec::synthetic();
    let mut args = Args {
        spec: None,
        restore: None,
        nodes: synthetic.nodes,
        cores: synthetic.cores_per_node,
        mem: synthetic.node_memory_gb,
        penalty: 0.0,
        shards: 1,
        validate: false,
        socket: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match flag.as_str() {
            "--spec" => args.spec = Some(value()?),
            "--restore" => args.restore = Some(value()?),
            "--nodes" => args.nodes = num(&value()?)? as u32,
            "--cores" => args.cores = num(&value()?)? as u32,
            "--mem" => args.mem = num(&value()?)?,
            "--penalty" => args.penalty = num(&value()?)?,
            "--shards" => {
                args.shards = num(&value()?)? as u32;
                if args.shards == 0 {
                    return Err("--shards needs at least 1".into());
                }
            }
            "--validate" => args.validate = true,
            "--socket" => args.socket = Some(value()?),
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn num(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|_| format!("bad number {s:?}"))
}

fn build_daemon(args: &Args) -> Result<Daemon, String> {
    if let Some(path) = &args.restore {
        if args.shards != 1 {
            return Err("--shards cannot be combined with --restore (the spec — sharded or not — is read from the snapshot)".into());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return Daemon::restore(&text).map_err(|e| e.to_string());
    }
    let spec = args
        .spec
        .as_deref()
        .ok_or("either --spec or --restore is required (see --help)")?;
    let spec = if args.shards > 1 {
        format!("sharded:{spec}:shards={}", args.shards)
    } else {
        spec.to_string()
    };
    let cluster = ClusterSpec::new(args.nodes, args.cores, args.mem).map_err(|e| e.to_string())?;
    let config = SimConfig {
        penalty: args.penalty,
        validate: args.validate,
        ..SimConfig::default()
    };
    Daemon::new(cluster, &spec, config).map_err(|e| e.to_string())
}

/// Feed `input` lines to the daemon, writing events to `output` with a
/// flush after every command (clients block on responses).
fn serve(
    daemon: &mut Daemon,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<Flow> {
    writeln!(output, "{}", daemon.ready_event().compact())?;
    output.flush()?;
    for line in input.lines() {
        let (events, flow) = daemon.handle_line(&line?);
        for e in &events {
            writeln!(output, "{}", e.compact())?;
        }
        output.flush()?;
        if flow == Flow::Shutdown {
            return Ok(Flow::Shutdown);
        }
    }
    Ok(Flow::Continue)
}

fn serve_socket(daemon: &mut Daemon, path: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener =
        std::os::unix::net::UnixListener::bind(path).map_err(|e| format!("binding {path}: {e}"))?;
    // Connections are served one at a time against the same session;
    // a client hanging up just ends its connection, not the daemon.
    loop {
        let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        match serve(daemon, reader, stream) {
            Ok(Flow::Shutdown) => {
                let _ = std::fs::remove_file(path);
                return Ok(());
            }
            Ok(Flow::Continue) => {}
            // A dropped connection mid-write is the client's problem.
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(format!("socket i/o: {e}")),
        }
    }
}

fn main() {
    let result = parse_args().and_then(|args| {
        let mut daemon = build_daemon(&args)?;
        match &args.socket {
            Some(path) => serve_socket(&mut daemon, path),
            None => serve(
                &mut daemon,
                std::io::stdin().lock(),
                std::io::stdout().lock(),
            )
            .map(|_| ())
            .map_err(|e| format!("stdio: {e}")),
        }
    });
    if let Err(e) = result {
        eprintln!("dfrs-serve: {e}");
        exit(2);
    }
}
