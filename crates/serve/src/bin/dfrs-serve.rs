//! `dfrs-serve` — the DFRS scheduler as a long-lived daemon.
//!
//! Reads NDJSON commands from stdin (default) or a Unix socket and
//! writes NDJSON events; see the crate docs of `dfrs_serve` for the
//! command set. Examples:
//!
//! ```text
//! printf '%s\n' \
//!   '{"cmd":"submit","time":0,"cpu":0.5,"mem":0.25,"runtime":600}' \
//!   '{"cmd":"drain"}' '{"cmd":"shutdown"}' \
//!   | dfrs-serve --spec dynmcb8-per:t=300 --nodes 4
//!
//! dfrs-serve --spec dynmcb8-drf --socket /tmp/dfrs.sock
//! dfrs-serve --restore /tmp/checkpoint.json
//!
//! # Crash-safe: journal every command, then recover after a kill -9.
//! dfrs-serve --spec fcfs --nodes 4 --journal /var/lib/dfrs/wal
//! dfrs-serve --restore --journal /var/lib/dfrs/wal
//! ```

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::exit;

use dfrs_core::json::Value;
use dfrs_core::ClusterSpec;
use dfrs_serve::chaos::ChaosPlan;
use dfrs_serve::journal::FsyncPolicy;
use dfrs_serve::{Daemon, Flow};
use dfrs_sim::SimConfig;

const USAGE: &str = "\
dfrs-serve: streaming DFRS scheduler daemon (NDJSON in, NDJSON out)

USAGE:
  dfrs-serve --spec SPEC [OPTIONS]
  dfrs-serve --restore PATH [OPTIONS]
  dfrs-serve --restore --journal DIR [OPTIONS]

OPTIONS:
  --spec SPEC       scheduler registry spec (e.g. fcfs, greedy-pmtn,
                    dynmcb8-per:t=300, dynmcb8-drf)
  --restore [PATH]  resume from a dfrs-snapshot-v1 file written by the
                    snapshot command (the spec is read from the file);
                    with no PATH, recover from the --journal directory
                    (newest snapshot + command replay)
  --journal DIR     write-ahead journal: append every mutating command
                    to DIR before applying it (DIR must be empty unless
                    recovering with --restore)
  --fsync POLICY    journal durability: always, interval:N, or never
                    [default: always]
  --nodes N         cluster nodes            [default: 128]
  --cores N         cores per node           [default: 4]
  --mem GB          memory per node in GB    [default: 8]
  --penalty SECS    rescheduling penalty     [default: 0]
  --shards N        partition the cluster and run one scheduler
                    instance per shard (wraps SPEC in
                    sharded:SPEC:shards=N; 1 leaves SPEC unchanged)
  --validate        check every plan and engine invariant
  --socket PATH     serve on a Unix socket instead of stdin/stdout
  --idle-timeout S  close a socket connection idle for S seconds
                    (the daemon keeps accepting; 0 disables) [default: 0]
  --max-line BYTES  reject command lines longer than BYTES with a typed
                    error event [default: 65536]
  --chaos SPEC      seeded crash point for fault-injection testing
                    (pre-append:N, post-append:N, torn:N:K,
                    mid-snapshot:N:K, batch-crash:N; needs --journal);
                    firing emulates kill -9 via abort()
  --help            this text
";

struct Args {
    spec: Option<String>,
    /// `Some(Some(path))` restores a snapshot file; `Some(None)` (bare
    /// `--restore`) recovers from the journal directory.
    restore: Option<Option<String>>,
    journal: Option<String>,
    fsync: FsyncPolicy,
    chaos: Option<ChaosPlan>,
    nodes: u32,
    cores: u32,
    mem: f64,
    penalty: f64,
    shards: u32,
    validate: bool,
    socket: Option<String>,
    idle_timeout: f64,
    max_line: usize,
}

fn parse_args() -> Result<Args, String> {
    let synthetic = ClusterSpec::synthetic();
    let mut args = Args {
        spec: None,
        restore: None,
        journal: None,
        fsync: FsyncPolicy::default(),
        chaos: None,
        nodes: synthetic.nodes,
        cores: synthetic.cores_per_node,
        mem: synthetic.node_memory_gb,
        penalty: 0.0,
        shards: 1,
        validate: false,
        socket: None,
        idle_timeout: 0.0,
        max_line: dfrs_serve::MAX_LINE_DEFAULT,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        // `--restore` takes an optional value: anything that does not
        // look like a flag.
        if flag == "--restore" {
            let path = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next(),
                _ => None,
            };
            args.restore = Some(path);
            continue;
        }
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match flag.as_str() {
            "--spec" => args.spec = Some(value()?),
            "--journal" => args.journal = Some(value()?),
            "--fsync" => args.fsync = value()?.parse()?,
            "--chaos" => args.chaos = Some(value()?.parse()?),
            "--nodes" => args.nodes = num(&value()?)? as u32,
            "--cores" => args.cores = num(&value()?)? as u32,
            "--mem" => args.mem = num(&value()?)?,
            "--penalty" => args.penalty = num(&value()?)?,
            "--shards" => {
                args.shards = num(&value()?)? as u32;
                if args.shards == 0 {
                    return Err("--shards needs at least 1".into());
                }
            }
            "--validate" => args.validate = true,
            "--socket" => args.socket = Some(value()?),
            "--idle-timeout" => args.idle_timeout = num(&value()?)?,
            "--max-line" => args.max_line = num(&value()?)? as usize,
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    if args.chaos.is_some() && args.journal.is_none() {
        return Err("--chaos needs --journal (it seeds crashes in the write-ahead path)".into());
    }
    if matches!(args.restore, Some(None)) && args.journal.is_none() {
        return Err("bare --restore needs --journal DIR to recover from (see --help)".into());
    }
    Ok(args)
}

fn num(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|_| format!("bad number {s:?}"))
}

/// Build the daemon the flags describe. The second value is the
/// `recovered` banner to emit before `ready` when journal recovery ran.
fn build_daemon(args: &Args) -> Result<(Daemon, Option<Value>), String> {
    let mut banner = None;
    let mut daemon = match &args.restore {
        Some(None) => {
            // Recover: snapshot + journal replay, journal stays attached.
            let dir = args.journal.as_deref().expect("checked in parse_args");
            let (daemon, recovery) =
                Daemon::recover(Path::new(dir), args.fsync).map_err(|e| e.to_string())?;
            banner = Some(Daemon::recovered_event(&recovery));
            daemon
        }
        Some(Some(path)) => {
            if args.shards != 1 {
                return Err("--shards cannot be combined with --restore (the spec — sharded or not — is read from the snapshot)".into());
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let mut daemon = Daemon::restore(&text).map_err(|e| e.to_string())?;
            if let Some(dir) = &args.journal {
                daemon
                    .attach_journal(Path::new(dir), args.fsync)
                    .map_err(|e| e.to_string())?;
            }
            daemon
        }
        None => {
            let spec = args
                .spec
                .as_deref()
                .ok_or("either --spec or --restore is required (see --help)")?;
            let spec = if args.shards > 1 {
                format!("sharded:{spec}:shards={}", args.shards)
            } else {
                spec.to_string()
            };
            let cluster =
                ClusterSpec::new(args.nodes, args.cores, args.mem).map_err(|e| e.to_string())?;
            let config = SimConfig {
                penalty: args.penalty,
                validate: args.validate,
                ..SimConfig::default()
            };
            let mut daemon = Daemon::new(cluster, &spec, config).map_err(|e| e.to_string())?;
            if let Some(dir) = &args.journal {
                daemon
                    .attach_journal(Path::new(dir), args.fsync)
                    .map_err(|e| e.to_string())?;
            }
            daemon
        }
    };
    if let Some(plan) = args.chaos {
        daemon.set_chaos(plan);
    }
    daemon.set_max_line(args.max_line);
    Ok((daemon, banner))
}

/// Most lines a batch will group under a saturating client; an idle
/// client degrades to batches of one — the old per-line loop.
const BATCH_MAX: usize = 256;

/// Feed `input` lines to the daemon, writing events to `output` with a
/// flush after every command (clients block on responses). `banner`
/// lines (the `recovered` event) are emitted once, before `ready`.
///
/// Lines arrive through a reader thread and a channel so the loop can
/// hand everything already waiting to [`Daemon::handle_batch`] in one
/// go — under a journaled daemon that is one group-committed write
/// (and at most one fsync) for the whole run of commands. The emitted
/// bytes are identical to the per-line loop's; only the journal's
/// write pattern changes.
fn serve(
    daemon: &mut Daemon,
    banner: &mut Option<Value>,
    input: impl BufRead + Send + 'static,
    mut output: impl Write,
) -> std::io::Result<Flow> {
    if let Some(b) = banner.take() {
        writeln!(output, "{}", b.compact())?;
    }
    writeln!(output, "{}", daemon.ready_event().compact())?;
    output.flush()?;
    let (tx, rx) = std::sync::mpsc::channel::<std::io::Result<String>>();
    std::thread::spawn(move || {
        for line in input.lines() {
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let mut batch: Vec<String> = Vec::new();
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first?);
        while batch.len() < BATCH_MAX {
            match rx.try_recv() {
                Ok(line) => batch.push(line?),
                Err(_) => break,
            }
        }
        for (events, flow) in daemon.handle_batch(&batch) {
            if flow == Flow::Crashed {
                // A seeded chaos point: die like kill -9 — no flush, no
                // cleanup, no acknowledgement.
                std::process::abort();
            }
            for e in &events {
                writeln!(output, "{}", e.compact())?;
            }
            output.flush()?;
            if flow == Flow::Shutdown {
                return Ok(Flow::Shutdown);
            }
        }
    }
    Ok(Flow::Continue)
}

fn serve_socket(
    daemon: &mut Daemon,
    banner: &mut Option<Value>,
    path: &str,
    idle_timeout: f64,
) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener =
        std::os::unix::net::UnixListener::bind(path).map_err(|e| format!("binding {path}: {e}"))?;
    // Connections are served one at a time against the same session;
    // a client hanging up just ends its connection, not the daemon.
    loop {
        let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
        if idle_timeout > 0.0 {
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs_f64(idle_timeout)))
                .map_err(|e| format!("timeout: {e}"))?;
        }
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        match serve(daemon, banner, reader, stream) {
            Ok(Flow::Shutdown) => {
                let _ = std::fs::remove_file(path);
                return Ok(());
            }
            Ok(Flow::Continue | Flow::Crashed) => {}
            // A dropped connection mid-write is the client's problem;
            // an idle connection is closed and the daemon keeps
            // accepting.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(format!("socket i/o: {e}")),
        }
    }
}

fn main() {
    let result = parse_args().and_then(|args| {
        let (mut daemon, mut banner) = build_daemon(&args)?;
        match &args.socket {
            Some(path) => serve_socket(&mut daemon, &mut banner, path, args.idle_timeout),
            None => serve(
                &mut daemon,
                &mut banner,
                BufReader::new(std::io::stdin()),
                std::io::stdout().lock(),
            )
            .map(|_| ())
            .map_err(|e| format!("stdio: {e}")),
        }
    });
    if let Err(e) = result {
        eprintln!("dfrs-serve: {e}");
        exit(2);
    }
}
