//! Write-ahead command journal for the `dfrs-serve` daemon.
//!
//! Every state-mutating command line (`submit`, `node-down`, `node-up`,
//! `advance`, `drain`) is appended here — sealed with a monotonic
//! sequence number and a CRC-32 — *before* it is applied to the
//! session, so a crash at any point loses at most commands the client
//! was never acknowledged for. Because the simulation runs on sim time,
//! replaying the journaled lines through the ordinary command loop
//! reproduces the pre-crash state bit for bit; there is no wall-clock
//! smear to approximate.
//!
//! ## On-disk layout
//!
//! A journal is a directory:
//!
//! ```text
//! snapshot-0000000000.json     # state covering seq ≤ 0 (the initial state)
//! segment-0000000001.ndjson    # commands seq 1..=c1
//! snapshot-0000000042.json     # state covering seq ≤ 42 (= c1)
//! segment-0000000043.ndjson    # commands seq 43..
//! ```
//!
//! Segments rotate at snapshots: a `snapshot` command writes the
//! quiescent `dfrs-snapshot-v1` document (atomically: temp file, fsync,
//! rename) named by the last sequence number it covers, then starts a
//! fresh segment. Recovery loads the newest snapshot and replays only
//! the segments after it; older segments and snapshots are dead weight
//! an operator may archive or delete.
//!
//! Each segment line is a sealed JSON object: the record without its
//! `crc` field is serialized compactly (keys sorted — the canonical
//! form), CRC-32'd, and the checksum stored alongside. Line 1 is a
//! header (`{"base":…,"v":"dfrs-journal-v1"}` sealed); every further
//! line is `{"line":"<raw command>","seq":N}` sealed. A final record
//! that fails verification — a *torn* append cut short by a crash — is
//! dropped and truncated on recovery; a bad record anywhere else is
//! corruption and a hard, typed error.
//!
//! ## fsync policy
//!
//! Records are always flushed to the OS before they are acknowledged (a
//! killed *process* loses nothing acknowledged); [`FsyncPolicy`]
//! controls how often `fdatasync` is issued for power-loss durability:
//! `always` (every acknowledged record, the default), `interval:N`
//! (every N records), or `never` (leave it to the OS).
//!
//! ## Group commit
//!
//! Appends are physically written by a dedicated writer thread. Callers
//! enqueue sealed records with [`Journal::append_async`] (which assigns
//! the sequence number immediately) and block on
//! [`Journal::wait_durable`]; the writer drains whatever has queued
//! since its last pass and commits the whole run with **one**
//! `write_all` and at most one `fdatasync`. Under a batching client
//! (see `Daemon::handle_batch`) an `always` journal therefore pays one
//! sync per *batch* instead of one per command, while the durability
//! contract is unchanged: a command is applied and acknowledged only
//! after its record — and, since the writer preserves append order,
//! every earlier record — is on disk. [`Journal::append`] is the
//! degenerate batch of one and behaves exactly as it always has.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use dfrs_core::checksum::crc32_hex;
use dfrs_core::json::{self, obj, Value};

/// Journal format identifier carried in every segment header.
pub const JOURNAL_SCHEMA: &str = "dfrs-journal-v1";

/// How often appended records are `fdatasync`'d.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: a crash (even power loss) loses nothing
    /// that was acknowledged. The default.
    #[default]
    Always,
    /// Sync every N records: bounded loss window, amortized cost.
    Interval(u64),
    /// Never sync explicitly; flush to the OS only. Survives process
    /// death, not power loss.
    Never,
}

impl FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("interval:").map(str::parse::<u64>) {
                Some(Ok(n)) if n > 0 => Ok(FsyncPolicy::Interval(n)),
                _ => Err(format!(
                    "bad fsync policy {s:?} (expected always, never, or interval:N)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(n) => write!(f, "interval:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Why a journal operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// The operation ("append", "rotate", "scan", …).
        op: String,
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// A record failed checksum or structural verification somewhere a
    /// torn tail cannot explain.
    Corrupt {
        /// The offending file.
        path: String,
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        detail: String,
    },
    /// Sequence numbers were not dense and monotonic (duplicate,
    /// out-of-order, or skipped).
    SeqGap {
        /// The offending file.
        path: String,
        /// The expected next sequence number.
        expected: u64,
        /// The sequence number found.
        got: u64,
    },
    /// The directory holds no journal (nothing to recover).
    NoJournal {
        /// The directory scanned.
        dir: String,
    },
    /// The directory already holds a journal (refusing to overwrite).
    NotEmpty {
        /// The directory.
        dir: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, detail } => {
                write!(f, "journal {op} on {path}: {detail}")
            }
            JournalError::Corrupt { path, line, detail } => {
                write!(f, "journal corrupt at {path}:{line}: {detail}")
            }
            JournalError::SeqGap {
                path,
                expected,
                got,
            } => {
                write!(
                    f,
                    "journal sequence gap in {path}: expected seq {expected}, found {got}"
                )
            }
            JournalError::NoJournal { dir } => {
                write!(f, "no journal found in {dir}")
            }
            JournalError::NotEmpty { dir } => {
                write!(
                    f,
                    "journal directory {dir} is not empty; pass --restore to recover from it"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Seal `pairs` into a record: CRC-32 the canonical (compact,
/// key-sorted) form of the object without its `crc` field, then attach
/// the checksum.
fn seal(pairs: Vec<(String, Value)>) -> Value {
    let body = obj(pairs.clone()).compact();
    let mut sealed = pairs;
    sealed.push(("crc".into(), Value::Str(crc32_hex(body.as_bytes()))));
    obj(sealed)
}

/// Verify a sealed record line; returns the object minus its `crc`.
fn verify(line: &str) -> Result<Value, String> {
    let v = json::parse(line).map_err(|e| format!("unparseable record: {e}"))?;
    let Value::Obj(mut m) = v else {
        return Err("record is not an object".into());
    };
    let Some(Value::Str(crc)) = m.remove("crc") else {
        return Err("record has no crc".into());
    };
    let body = Value::Obj(m).compact();
    let want = crc32_hex(body.as_bytes());
    if crc != want {
        return Err(format!(
            "checksum mismatch (recorded {crc}, computed {want})"
        ));
    }
    json::parse(&body).map_err(|e| format!("reparse: {e}"))
}

fn seg_name(base: u64) -> String {
    format!("segment-{base:010}.ndjson")
}

fn snap_name(covered: u64) -> String {
    format!("snapshot-{covered:010}.json")
}

/// Parse `"prefix-NNNNNNNNNN.suffix"` back to N.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io {
        op: op.into(),
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Write `text` to `path` atomically: temp file, fsync, rename. A crash
/// mid-write leaves only a `.tmp` file, which scans ignore.
fn write_atomic(path: &Path, text: &str) -> Result<(), JournalError> {
    let tmp = path.with_extension("json.tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(text.as_bytes())
        .map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    sync_dir(path.parent().unwrap_or(Path::new(".")));
    Ok(())
}

/// Best-effort directory fsync so renames and creations are durable.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// A torn final record found (and truncated away) during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct TornTail {
    /// The segment holding the torn bytes.
    pub path: String,
    /// Byte offset the file is truncated to.
    pub keep_bytes: u64,
    /// The dropped byte count.
    pub dropped: u64,
}

/// Everything a [`scan`] recovers from a journal directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// Text of the newest valid snapshot.
    pub snapshot: String,
    /// The sequence number that snapshot covers through.
    pub covered: u64,
    /// Raw command lines after the snapshot, in sequence order.
    pub lines: Vec<String>,
    /// The last sequence number present (`covered` when no suffix).
    pub last_seq: u64,
    /// The torn final record, when one was found.
    pub torn: Option<TornTail>,
}

/// Read a journal directory: find the newest snapshot, verify and
/// collect the command suffix after it, and tolerate (exactly) a torn
/// final record. Pure read — call [`Journal::resume`] afterwards to
/// truncate the torn tail and reopen for appends.
///
/// # Errors
/// [`JournalError::NoJournal`] when the directory holds no journal;
/// [`JournalError::Corrupt`] / [`JournalError::SeqGap`] on damage a
/// torn tail cannot explain; [`JournalError::Io`] on filesystem
/// failures.
pub fn scan(dir: &Path) -> Result<Recovered, JournalError> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("scan", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("scan", dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(base) = parse_numbered(&name, "segment-", ".ndjson") {
            segments.push((base, entry.path()));
        } else if let Some(covered) = parse_numbered(&name, "snapshot-", ".json") {
            snapshots.push((covered, entry.path()));
        }
        // Anything else — .tmp leftovers of interrupted atomic writes,
        // stray files — is ignored.
    }
    if snapshots.is_empty() && segments.is_empty() {
        return Err(JournalError::NoJournal {
            dir: dir.display().to_string(),
        });
    }
    let (covered, snap_path) = snapshots
        .into_iter()
        .max_by_key(|(c, _)| *c)
        .ok_or_else(|| JournalError::Corrupt {
            path: dir.display().to_string(),
            line: 0,
            detail: "segments present but no snapshot (journals always start with one)".into(),
        })?;
    let snapshot = fs::read_to_string(&snap_path).map_err(|e| io_err("read", &snap_path, e))?;

    segments.sort_unstable();
    segments.retain(|(base, _)| *base > covered);
    let mut lines = Vec::new();
    let mut expected = covered + 1;
    let mut torn = None;
    let n_segs = segments.len();
    for (si, (base, path)) in segments.into_iter().enumerate() {
        if base != expected {
            return Err(JournalError::SeqGap {
                path: path.display().to_string(),
                expected,
                got: base,
            });
        }
        let last_segment = si + 1 == n_segs;
        let data = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let mut offset = 0usize;
        let mut line_no = 0u64;
        while offset < data.len() {
            let nl = data[offset..].iter().position(|&b| b == b'\n');
            let (end, complete) = match nl {
                Some(p) => (offset + p, true),
                None => (data.len(), false),
            };
            line_no += 1;
            let line_bytes = &data[offset..end];
            // A record is torn when it is the final line of the final
            // segment AND is either newline-less or fails verification.
            let fail = |detail: String| -> Result<Option<TornTail>, JournalError> {
                let at_tail = last_segment && (end >= data.len() || end + 1 >= data.len());
                if at_tail {
                    Ok(Some(TornTail {
                        path: path.display().to_string(),
                        keep_bytes: offset as u64,
                        dropped: (data.len() - offset) as u64,
                    }))
                } else {
                    Err(JournalError::Corrupt {
                        path: path.display().to_string(),
                        line: line_no,
                        detail,
                    })
                }
            };
            let text = match std::str::from_utf8(line_bytes) {
                Ok(t) => t,
                Err(_) => {
                    torn = fail("record is not UTF-8".into())?;
                    break;
                }
            };
            if !complete {
                torn = fail("record has no trailing newline".into())?;
                break;
            }
            let body = match verify(text) {
                Ok(b) => b,
                Err(detail) => {
                    torn = fail(detail)?;
                    break;
                }
            };
            if line_no == 1 {
                // Segment header: schema + base must match.
                let v = body.get("v").and_then(Value::as_str);
                let hb = body.get("base").and_then(Value::as_f64);
                if v != Some(JOURNAL_SCHEMA) || hb != Some(base as f64) {
                    return Err(JournalError::Corrupt {
                        path: path.display().to_string(),
                        line: 1,
                        detail: format!("bad segment header (schema {v:?}, base {hb:?})"),
                    });
                }
            } else {
                let seq = body.get("seq").and_then(Value::as_f64).map(|n| n as u64);
                let raw = body.get("line").and_then(Value::as_str);
                match (seq, raw) {
                    (Some(seq), Some(raw)) => {
                        if seq != expected {
                            return Err(JournalError::SeqGap {
                                path: path.display().to_string(),
                                expected,
                                got: seq,
                            });
                        }
                        expected += 1;
                        lines.push(raw.to_string());
                    }
                    _ => {
                        torn = fail("record lacks seq/line fields".into())?;
                        break;
                    }
                }
            }
            offset = end + 1;
        }
        if torn.is_some() {
            break;
        }
    }
    Ok(Recovered {
        snapshot,
        covered,
        last_seq: expected - 1,
        lines,
        torn,
    })
}

/// State shared between a [`Journal`] handle and its writer thread.
struct WriterShared {
    state: Mutex<WriterState>,
    /// Signaled when records queue up or a stop is requested.
    work: Condvar,
    /// Signaled when the ack watermark advances or an error lands.
    done: Condvar,
}

struct WriterState {
    /// Sealed record bytes (trailing newline included), append order.
    queue: Vec<(u64, Vec<u8>)>,
    /// Highest sequence number written (and synced per policy).
    acked: u64,
    /// Records written since the last `fdatasync` (`Interval` policy);
    /// owned by the writer while it runs, read back across restarts.
    unsynced: u64,
    /// The first write failure. Sticky: the journal is dead afterwards
    /// and every queued or future command fails with this error.
    error: Option<JournalError>,
    stop: bool,
}

fn lock(m: &Mutex<WriterState>) -> std::sync::MutexGuard<'_, WriterState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The group-commit loop: drain everything queued since the last pass,
/// commit it with one `write_all` (and at most one `fdatasync`), move
/// the ack watermark, repeat. Returns the segment file on shutdown so
/// rotation and torn-append injection can reuse it.
fn run_writer(
    mut file: File,
    seg_path: PathBuf,
    policy: FsyncPolicy,
    shared: Arc<WriterShared>,
) -> File {
    let mut unsynced = lock(&shared.state).unsynced;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let batch = {
            let mut st = lock(&shared.state);
            while st.queue.is_empty() && !st.stop {
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if st.queue.is_empty() {
                st.unsynced = unsynced;
                return file;
            }
            if st.error.is_some() {
                // The journal is already dead; the queued commands will
                // never be applied. Drop them and wake their waiters.
                st.queue.clear();
                shared.done.notify_all();
                continue;
            }
            std::mem::take(&mut st.queue)
        };
        let last = batch.last().expect("drained batch is non-empty").0;
        buf.clear();
        for (_, rec) in &batch {
            buf.extend_from_slice(rec);
        }
        let mut res = file
            .write_all(&buf)
            .map_err(|e| io_err("append", &seg_path, e));
        if res.is_ok() {
            res = match policy {
                FsyncPolicy::Always => file.sync_data().map_err(|e| io_err("sync", &seg_path, e)),
                FsyncPolicy::Interval(n) => {
                    unsynced += batch.len() as u64;
                    if unsynced >= n {
                        unsynced = 0;
                        file.sync_data().map_err(|e| io_err("sync", &seg_path, e))
                    } else {
                        Ok(())
                    }
                }
                FsyncPolicy::Never => Ok(()),
            };
        }
        let mut st = lock(&shared.state);
        match res {
            Ok(()) => st.acked = last,
            Err(e) => st.error = Some(e),
        }
        shared.done.notify_all();
    }
}

/// An open, appendable journal.
pub struct Journal {
    dir: PathBuf,
    policy: FsyncPolicy,
    /// The writer thread owning the live segment file. `None` only
    /// after a failed stop (the journal is then dead; see `fail`).
    writer: Option<(Arc<WriterShared>, JoinHandle<File>)>,
    seg_path: PathBuf,
    seg_base: u64,
    next_seq: u64,
    /// `Interval` carry between writer restarts.
    unsynced: u64,
    /// The sticky first failure; everything after it returns this.
    fail: Option<JournalError>,
}

impl Journal {
    /// Create a fresh journal in `dir` (created if missing), anchored
    /// at `initial_snapshot` — the daemon's state before any journaled
    /// command, written as `snapshot-0000000000.json`. Refuses a
    /// directory that already holds journal files.
    ///
    /// # Errors
    /// [`JournalError::NotEmpty`] when `dir` already holds a journal;
    /// [`JournalError::Io`] on filesystem failures.
    pub fn create(
        dir: &Path,
        policy: FsyncPolicy,
        initial_snapshot: &str,
    ) -> Result<Journal, JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
        match scan(dir) {
            Err(JournalError::NoJournal { .. }) => {}
            _ => {
                return Err(JournalError::NotEmpty {
                    dir: dir.display().to_string(),
                })
            }
        }
        write_atomic(&dir.join(snap_name(0)), initial_snapshot)?;
        let (file, seg_path) = Self::open_segment(dir, 1)?;
        let mut j = Journal {
            dir: dir.to_path_buf(),
            policy,
            writer: None,
            seg_path,
            seg_base: 1,
            next_seq: 1,
            unsynced: 0,
            fail: None,
        };
        j.start_writer(file)?;
        Ok(j)
    }

    /// Reopen the journal `scan` described, truncating the torn tail
    /// (if any) and positioning appends after the last valid record.
    ///
    /// # Errors
    /// [`JournalError::Io`] on filesystem failures.
    pub fn resume(
        dir: &Path,
        policy: FsyncPolicy,
        recovered: &Recovered,
    ) -> Result<Journal, JournalError> {
        if let Some(torn) = &recovered.torn {
            let path = Path::new(&torn.path);
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("truncate", path, e))?;
            f.set_len(torn.keep_bytes)
                .map_err(|e| io_err("truncate", path, e))?;
            f.sync_all().map_err(|e| io_err("sync", path, e))?;
        }
        let next_seq = recovered.last_seq + 1;
        // The live segment is the one after the newest snapshot —
        // unless the crash hit between snapshot rename and segment
        // creation, in which case it does not exist yet and is created
        // here, completing the interrupted rotation.
        let seg_base = recovered.covered + 1;
        let seg_path = dir.join(seg_name(seg_base));
        let (file, seg_path) = if seg_path.exists() {
            let mut f = OpenOptions::new()
                .append(true)
                .open(&seg_path)
                .map_err(|e| io_err("append", &seg_path, e))?;
            let len = f
                .metadata()
                .map_err(|e| io_err("append", &seg_path, e))?
                .len();
            if len == 0 {
                // The crash tore the segment header itself (truncated
                // to nothing above): rewrite it.
                let header = seal(vec![
                    ("base".into(), Value::Num(seg_base as f64)),
                    ("v".into(), Value::Str(JOURNAL_SCHEMA.into())),
                ]);
                writeln!(f, "{}", header.compact()).map_err(|e| io_err("write", &seg_path, e))?;
                f.sync_all().map_err(|e| io_err("sync", &seg_path, e))?;
            }
            (f, seg_path)
        } else {
            Self::open_segment(dir, seg_base)?
        };
        let mut j = Journal {
            dir: dir.to_path_buf(),
            policy,
            writer: None,
            seg_path,
            seg_base,
            next_seq,
            unsynced: 0,
            fail: None,
        };
        j.start_writer(file)?;
        Ok(j)
    }

    /// Create `segment-{base}` with its sealed header, synced.
    fn open_segment(dir: &Path, base: u64) -> Result<(File, PathBuf), JournalError> {
        let path = dir.join(seg_name(base));
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        let header = seal(vec![
            ("base".into(), Value::Num(base as f64)),
            ("v".into(), Value::Str(JOURNAL_SCHEMA.into())),
        ]);
        writeln!(f, "{}", header.compact()).map_err(|e| io_err("write", &path, e))?;
        f.sync_all().map_err(|e| io_err("sync", &path, e))?;
        sync_dir(dir);
        Ok((f, path))
    }

    /// The last sequence number appended (0 before the first append).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Spawn the group-commit writer thread around `file`.
    fn start_writer(&mut self, file: File) -> Result<(), JournalError> {
        let shared = Arc::new(WriterShared {
            state: Mutex::new(WriterState {
                queue: Vec::new(),
                // Everything enqueued so far was drained by the stop
                // that preceded this start (or nothing was, at open).
                acked: self.next_seq - 1,
                unsynced: self.unsynced,
                error: None,
                stop: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let seg_path = self.seg_path.clone();
        let policy = self.policy;
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dfrs-journal-writer".into())
            .spawn(move || run_writer(file, seg_path, policy, thread_shared))
            .map_err(|e| io_err("spawn", &self.seg_path, e))?;
        self.writer = Some((shared, handle));
        Ok(())
    }

    /// Drain the queue, join the writer, and take back the segment
    /// file. Any write failure the writer hit becomes the sticky
    /// journal error.
    fn stop_writer(&mut self) -> Result<File, JournalError> {
        if let Some(e) = &self.fail {
            return Err(e.clone());
        }
        let (shared, handle) = self.writer.take().expect("journal has a live writer");
        {
            let mut st = lock(&shared.state);
            st.stop = true;
            shared.work.notify_all();
        }
        let file = handle.join().map_err(|_| JournalError::Io {
            op: "writer".into(),
            path: self.seg_path.display().to_string(),
            detail: "journal writer thread panicked".into(),
        })?;
        let st = lock(&shared.state);
        self.unsynced = st.unsynced;
        if let Some(e) = &st.error {
            self.fail = Some(e.clone());
            return Err(e.clone());
        }
        Ok(file)
    }

    /// Enqueue one raw command line for the group-commit writer and
    /// return the sequence number it was sealed with. The record is
    /// **not** yet durable — pair with [`Journal::wait_durable`] before
    /// applying or acknowledging the command.
    ///
    /// # Errors
    /// The sticky journal error, once any write has failed; nothing is
    /// enqueued and no sequence number is consumed.
    pub fn append_async(&mut self, raw: &str) -> Result<u64, JournalError> {
        if let Some(e) = &self.fail {
            return Err(e.clone());
        }
        let seq = self.next_seq;
        let rec = seal(vec![
            ("line".into(), Value::Str(raw.into())),
            ("seq".into(), Value::Num(seq as f64)),
        ]);
        let mut bytes = rec.compact().into_bytes();
        bytes.push(b'\n');
        let (shared, _) = self.writer.as_ref().expect("journal has a live writer");
        {
            let mut st = lock(&shared.state);
            if let Some(e) = &st.error {
                let e = e.clone();
                self.fail = Some(e.clone());
                return Err(e);
            }
            st.queue.push((seq, bytes));
            shared.work.notify_one();
        }
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Block until the record carrying `seq` (and, by append order,
    /// every earlier record) is written and synced per the
    /// [`FsyncPolicy`].
    ///
    /// # Errors
    /// The write failure, when the writer could not commit the record —
    /// the command must then NOT be applied (write-ahead discipline).
    pub fn wait_durable(&mut self, seq: u64) -> Result<(), JournalError> {
        if let Some(e) = &self.fail {
            return Err(e.clone());
        }
        let (shared, _) = self.writer.as_ref().expect("journal has a live writer");
        let mut st = lock(&shared.state);
        while st.acked < seq && st.error.is_none() {
            st = shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(e) = &st.error {
            let e = e.clone();
            drop(st);
            self.fail = Some(e.clone());
            return Err(e);
        }
        Ok(())
    }

    /// Append one raw command line; returns its sequence number. The
    /// record is flushed to the OS before returning and synced per the
    /// [`FsyncPolicy`] — a group-commit batch of one.
    ///
    /// # Errors
    /// [`JournalError::Io`] on filesystem failures — the command must
    /// then NOT be applied (write-ahead discipline).
    pub fn append(&mut self, raw: &str) -> Result<u64, JournalError> {
        let seq = self.append_async(raw)?;
        self.wait_durable(seq)?;
        Ok(seq)
    }

    /// Chaos hook: write only the first `keep` bytes of what
    /// [`Journal::append`] would have written (newline included in the
    /// count), synced — a torn append, as a crash mid-write leaves it.
    /// The sequence number is *not* consumed; the process is expected
    /// to die immediately after.
    pub fn append_torn(&mut self, raw: &str, keep: usize) -> Result<(), JournalError> {
        let mut file = self.stop_writer()?;
        let res = (|| {
            let rec = seal(vec![
                ("line".into(), Value::Str(raw.into())),
                ("seq".into(), Value::Num(self.next_seq as f64)),
            ]);
            let mut bytes = rec.compact().into_bytes();
            bytes.push(b'\n');
            let keep = keep.min(bytes.len().saturating_sub(1)).max(1);
            file.write_all(&bytes[..keep])
                .map_err(|e| io_err("append", &self.seg_path, e))?;
            file.sync_data()
                .map_err(|e| io_err("sync", &self.seg_path, e))
        })();
        self.start_writer(file)?;
        res
    }

    /// Record a snapshot covering every appended command and rotate to
    /// a fresh segment. Returns the covered sequence number. When
    /// nothing was appended since the last rotation the snapshot file
    /// is rewritten in place and the segment is kept.
    ///
    /// # Errors
    /// [`JournalError::Io`] on filesystem failures.
    pub fn mark_snapshot(&mut self, snapshot_text: &str) -> Result<u64, JournalError> {
        let covered = self.last_seq();
        // Stopping the writer drains every queued append, so the
        // snapshot really does cover `covered`.
        let mut file = self.stop_writer()?;
        let res = (|| {
            write_atomic(&self.dir.join(snap_name(covered)), snapshot_text)?;
            if self.next_seq > self.seg_base {
                file.sync_data()
                    .map_err(|e| io_err("sync", &self.seg_path, e))?;
                let (rotated, seg_path) = Self::open_segment(&self.dir, self.next_seq)?;
                file = rotated;
                self.seg_path = seg_path;
                self.seg_base = self.next_seq;
                self.unsynced = 0;
            }
            Ok(())
        })();
        self.start_writer(file)?;
        res.map(|()| covered)
    }

    /// Chaos hook: leave a half-written snapshot temp file (never
    /// renamed into place), as a crash mid-snapshot would. Recovery
    /// must ignore it.
    pub fn torn_snapshot(&self, snapshot_text: &str, keep: usize) -> Result<(), JournalError> {
        let tmp = self
            .dir
            .join(snap_name(self.last_seq()))
            .with_extension("json.tmp");
        let keep = keep.min(snapshot_text.len());
        fs::write(&tmp, &snapshot_text.as_bytes()[..keep]).map_err(|e| io_err("write", &tmp, e))
    }
}

impl Drop for Journal {
    /// Drain and join the writer so a cleanly dropped journal leaves
    /// every enqueued record on disk (an aborted *process* still loses
    /// only unacknowledged commands — that is the contract).
    fn drop(&mut self) {
        if self.writer.is_some() {
            let _ = self.stop_writer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-side unwraps assume a writable temp dir — an environment
    // invariant, not a code path under test.
    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfrs-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse(), Ok(FsyncPolicy::Always));
        assert_eq!("never".parse(), Ok(FsyncPolicy::Never));
        assert_eq!("interval:8".parse(), Ok(FsyncPolicy::Interval(8)));
        for bad in ["", "sometimes", "interval:0", "interval:x", "interval:"] {
            assert!(bad.parse::<FsyncPolicy>().is_err(), "{bad:?}");
        }
        assert_eq!(FsyncPolicy::Interval(8).to_string(), "interval:8");
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::create(&dir, FsyncPolicy::Always, "{\"fake\":1}").unwrap();
        assert_eq!(j.append(r#"{"cmd":"drain"}"#).unwrap(), 1);
        assert_eq!(j.append(r#"{"cmd":"advance","time":5}"#).unwrap(), 2);
        let rec = scan(&dir).unwrap();
        assert_eq!(rec.covered, 0);
        assert_eq!(rec.last_seq, 2);
        assert_eq!(rec.snapshot, "{\"fake\":1}");
        assert_eq!(
            rec.lines,
            vec![
                r#"{"cmd":"drain"}"#.to_string(),
                r#"{"cmd":"advance","time":5}"#.to_string()
            ]
        );
        assert_eq!(rec.torn, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotates_and_scan_replays_only_the_suffix() {
        let dir = tmpdir("rotate");
        let mut j = Journal::create(&dir, FsyncPolicy::Interval(4), "s0").unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        assert_eq!(j.mark_snapshot("s2").unwrap(), 2);
        j.append("c").unwrap();
        let rec = scan(&dir).unwrap();
        assert_eq!(rec.covered, 2);
        assert_eq!(rec.snapshot, "s2");
        assert_eq!(rec.lines, vec!["c".to_string()]);
        assert_eq!(rec.last_seq, 3);
        // Files on disk: two snapshots, two segments.
        assert!(dir.join("snapshot-0000000000.json").exists());
        assert!(dir.join("snapshot-0000000002.json").exists());
        assert!(dir.join("segment-0000000001.ndjson").exists());
        assert!(dir.join("segment-0000000003.ndjson").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmpdir("torn");
        let mut j = Journal::create(&dir, FsyncPolicy::Always, "s0").unwrap();
        j.append("a").unwrap();
        j.append_torn("b", 9).unwrap();
        let rec = scan(&dir).unwrap();
        assert_eq!(rec.lines, vec!["a".to_string()]);
        assert_eq!(rec.last_seq, 1);
        let torn = rec.torn.clone().expect("torn tail detected");
        assert!(torn.dropped > 0);
        // Resume truncates; a second scan is clean and appends go on.
        let mut j = Journal::resume(&dir, FsyncPolicy::Always, &rec).unwrap();
        assert_eq!(j.append("b2").unwrap(), 2);
        let rec = scan(&dir).unwrap();
        assert_eq!(rec.torn, None);
        assert_eq!(rec.lines, vec!["a".to_string(), "b2".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_tail_is_a_hard_error() {
        let dir = tmpdir("corrupt");
        let mut j = Journal::create(&dir, FsyncPolicy::Always, "s0").unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        let seg = dir.join(seg_name(1));
        let mut data = fs::read(&seg).unwrap();
        // Flip a byte in the middle record (line 2 of 3).
        let first_nl = data.iter().position(|&b| b == b'\n').unwrap();
        data[first_nl + 10] ^= 0x20;
        fs::write(&seg, &data).unwrap();
        match scan(&dir) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gaps_are_typed_errors() {
        let dir = tmpdir("seqgap");
        let mut j = Journal::create(&dir, FsyncPolicy::Always, "s0").unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        j.append("c").unwrap();
        let seg = dir.join(seg_name(1));
        let text = fs::read_to_string(&seg).unwrap();
        // Drop the middle record: a validly-sealed but skipped seq.
        let lines: Vec<&str> = text.lines().collect();
        fs::write(&seg, format!("{}\n{}\n{}\n", lines[0], lines[1], lines[3])).unwrap();
        match scan(&dir) {
            Err(JournalError::SeqGap { expected, got, .. }) => {
                assert_eq!((expected, got), (2, 3));
            }
            other => panic!("expected SeqGap, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_are_ignored_and_create_refuses_nonempty() {
        let dir = tmpdir("tmpfiles");
        let mut j = Journal::create(&dir, FsyncPolicy::Never, "s0").unwrap();
        j.append("a").unwrap();
        j.torn_snapshot("half a snapsh", 7).unwrap();
        let rec = scan(&dir).unwrap();
        assert_eq!(rec.covered, 0, "torn snapshot tmp must not be chosen");
        assert_eq!(rec.lines, vec!["a".to_string()]);
        assert!(matches!(
            Journal::create(&dir, FsyncPolicy::Never, "s0"),
            Err(JournalError::NotEmpty { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_scans_as_no_journal() {
        let dir = tmpdir("empty");
        assert!(matches!(scan(&dir), Err(JournalError::NoJournal { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
