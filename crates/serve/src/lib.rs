//! # dfrs-serve
//!
//! The streaming service mode of the DFRS workspace: a long-lived
//! scheduler daemon built on [`dfrs_sim::SimSession`]. Clients drive a
//! simulated cluster one command at a time over an NDJSON line
//! protocol — submit jobs, fail and repair nodes, advance the clock —
//! and the daemon answers with the placement, preemption, and
//! migration decisions the configured scheduler makes, plus a record
//! line per finished job.
//!
//! The protocol lives in [`Daemon`]; the `dfrs-serve` binary wires it
//! to stdin/stdout or a Unix socket. One command object per line in,
//! zero or more event objects per line out:
//!
//! | command | fields | effect |
//! |---|---|---|
//! | `submit` | `time?`, `tasks?`, `cpu`, `mem`, `runtime`, `gpu?`, `id?` | admit a job (ids are assigned densely; a given `id` must match) |
//! | `node-down` / `node-up` | `time?`, `node` | platform event at `time` (default: now) |
//! | `advance` | `time` | run the clock forward, firing everything due |
//! | `drain` | | run until every admitted job completed |
//! | `stats` | | one `stats` event, no state change |
//! | `snapshot` | `path?` | quiescent-state snapshot to `path`, or inline |
//! | `shutdown` | | final `shutdown` event, then the daemon exits |
//!
//! Every response event carries an `"event"` key: `ready`, `submitted`,
//! `decision`, `record`, `node`, `advanced`, `drained`, `stats`,
//! `snapshot`, `shutdown`, or `error`. Errors never kill the daemon —
//! the engine's typed [`dfrs_sim::SimError`] values surface as `error`
//! events and the session keeps serving.
//!
//! Output is deterministic: same command lines, same event lines, byte
//! for byte — which is what the checked-in golden transcript in CI
//! asserts, and what makes the snapshot/restore cycle testable (the
//! resumed daemon must emit exactly what the uninterrupted one would
//! have).
//!
//! ## Crash safety
//!
//! With a [`journal`] attached (`--journal DIR`), every state-mutating
//! command is appended to a write-ahead log *before* it is applied, and
//! [`Daemon::recover`] rebuilds a crashed daemon from the newest
//! snapshot plus a replay of the journal suffix — byte-identical to
//! never having crashed, because the simulation runs on sim time and
//! replay goes through this very command loop. Scheduler faults are
//! contained by [`quarantine`]: a panicking tick or invalid plan
//! cancels the offending job with a typed `error` event instead of
//! poisoning the daemon. The [`chaos`] module provides the seeded
//! crash points the recovery tests and CI chaos matrix are built on.

use std::fmt;
use std::path::Path;

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::json::{self, obj, Value};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sched::{SchedulerRegistry, SpecError};
use dfrs_sim::{
    snapshot_spec, AllocEvent, JobRecord, Scheduler, SimConfig, SimError, SimSession, TimelineEntry,
};

pub mod chaos;
pub mod journal;
pub mod quarantine;

use chaos::{ChaosAction, ChaosPlan, ChaosState};
use journal::{FsyncPolicy, Journal, JournalError};
use quarantine::{QuarantineGuard, QuarantineLog};

/// Why a daemon could not be constructed, restored, or recovered.
/// Command-level failures never use this — they become `error` events
/// and the daemon keeps serving; this type is for the startup paths
/// where there is no session to keep alive.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The scheduler spec did not parse or build.
    Spec(SpecError),
    /// The snapshot document was rejected by the session (malformed,
    /// truncated, or not quiescent).
    Sim(SimError),
    /// The snapshot text was not parseable JSON or lacked the recorded
    /// scheduler spec.
    Snapshot {
        /// What was wrong with the text.
        detail: String,
    },
    /// The write-ahead journal could not be created, appended, or
    /// recovered.
    Journal(JournalError),
}

/// The pre-journal name of [`ServeError`], kept for embedders.
pub type DaemonError = ServeError;

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::Sim(e) => write!(f, "{e}"),
            ServeError::Snapshot { detail } => write!(f, "snapshot: {detail}"),
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

/// Whether the daemon should keep reading commands after a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving.
    Continue,
    /// A `shutdown` command was processed; stop reading.
    Shutdown,
    /// A seeded [`chaos`] crash point fired: the process must die *now*
    /// without flushing anything (the binary calls
    /// [`std::process::abort`]; in-process tests drop the daemon).
    Crashed,
}

/// Default cap on accepted command-line length (bytes). Oversized
/// lines yield a typed `error` event and are not applied.
pub const MAX_LINE_DEFAULT: usize = 64 * 1024;

/// What [`Daemon::recover`] did, for the startup banner.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Sequence number covered by the snapshot recovery started from.
    pub covered: u64,
    /// Journaled commands replayed on top of it.
    pub replayed: u64,
    /// Last sequence number in the journal after recovery.
    pub last_seq: u64,
    /// The torn final record, when one was dropped.
    pub torn: Option<journal::TornTail>,
}

/// The protocol engine: one [`SimSession`] plus the command dispatch.
/// Transport-free — the binary (stdin/stdout, Unix socket) and the
/// tests both feed lines through [`Daemon::handle_line`].
pub struct Daemon {
    session: SimSession,
    journal: Option<Journal>,
    chaos: Option<ChaosState>,
    qlog: QuarantineLog,
    max_line: usize,
}

impl Daemon {
    /// Fresh daemon: build `spec` through the built-in scheduler
    /// registry and open a session at `t = 0`. The session always
    /// records the allocation timeline (drained into `decision` events
    /// after every command, so memory stays flat).
    ///
    /// # Errors
    /// [`DaemonError::Spec`] when `spec` does not parse or build.
    pub fn new(cluster: ClusterSpec, spec: &str, config: SimConfig) -> Result<Self, ServeError> {
        let scheduler = SchedulerRegistry::builtin().build_str(spec)?;
        Ok(Self::with_scheduler(cluster, spec, scheduler, config))
    }

    /// Fresh daemon around a caller-supplied scheduler (tests and
    /// embedders; the registry is bypassed, `spec` is only recorded).
    /// Like every constructor, the scheduler is wrapped in the
    /// [`quarantine::QuarantineGuard`].
    pub fn with_scheduler(
        cluster: ClusterSpec,
        spec: &str,
        scheduler: Box<dyn Scheduler>,
        mut config: SimConfig,
    ) -> Self {
        config.record_timeline = true;
        let qlog = QuarantineLog::default();
        let guarded = Box::new(QuarantineGuard::new(scheduler, qlog.clone()));
        Daemon {
            session: SimSession::new(cluster, spec, guarded, config),
            journal: None,
            chaos: None,
            qlog,
            max_line: MAX_LINE_DEFAULT,
        }
    }

    /// Attach a fresh write-ahead journal in `dir`: the current
    /// (quiescent) state becomes the base snapshot, and every further
    /// mutating command is journaled before it is applied.
    ///
    /// # Errors
    /// [`ServeError::Sim`] when the session is not quiescent (attach at
    /// startup); [`ServeError::Journal`] when `dir` already holds a
    /// journal or on I/O failure.
    pub fn attach_journal(&mut self, dir: &Path, policy: FsyncPolicy) -> Result<(), ServeError> {
        let doc = self.session.snapshot()?;
        self.journal = Some(Journal::create(dir, policy, &doc.pretty())?);
        Ok(())
    }

    /// Arm a seeded crash point (effective only with a journal
    /// attached; see [`chaos`]).
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(ChaosState::new(plan));
    }

    /// Cap accepted command-line length (default
    /// [`MAX_LINE_DEFAULT`]).
    pub fn set_max_line(&mut self, bytes: usize) {
        self.max_line = bytes;
    }

    /// Rebuild a crashed daemon from its journal directory: load the
    /// newest snapshot, replay the journaled command suffix through the
    /// ordinary command loop (a torn final record is dropped and
    /// truncated), and reopen the journal for appends. The recovered
    /// daemon is byte-identical to one that never crashed.
    ///
    /// # Errors
    /// [`ServeError::Journal`] on a missing or damaged journal,
    /// [`ServeError::Spec`] / [`ServeError::Sim`] /
    /// [`ServeError::Snapshot`] when the base snapshot no longer
    /// restores.
    pub fn recover(dir: &Path, policy: FsyncPolicy) -> Result<(Daemon, Recovery), ServeError> {
        let rec = journal::scan(dir)?;
        let mut daemon = Daemon::restore(&rec.snapshot)?;
        // Journaled lines were accepted once; replay must not re-limit
        // them (the caller may have lowered max_line since).
        daemon.max_line = usize::MAX;
        for line in &rec.lines {
            // Replay outputs are discarded — the original run already
            // delivered them. Failing commands fail identically, which
            // is all determinism needs.
            let (_events, _flow) = daemon.handle_line(line);
        }
        daemon.max_line = MAX_LINE_DEFAULT;
        daemon.journal = Some(Journal::resume(dir, policy, &rec)?);
        Ok((
            daemon,
            Recovery {
                covered: rec.covered,
                replayed: rec.lines.len() as u64,
                last_seq: rec.last_seq,
                torn: rec.torn,
            },
        ))
    }

    /// Resume a daemon from the text of a `dfrs-snapshot-v1` document:
    /// read the registry spec recorded in it, rebuild the scheduler,
    /// and restore the session. The resumed daemon continues
    /// byte-identically to the one that wrote the snapshot.
    ///
    /// # Errors
    /// [`DaemonError::Snapshot`] when the text is not parseable JSON or
    /// records no spec, [`DaemonError::Spec`] when that spec no longer
    /// builds, [`DaemonError::Sim`] when the session rejects the
    /// document.
    pub fn restore(text: &str) -> Result<Self, ServeError> {
        let doc = json::parse(text).map_err(|e| ServeError::Snapshot {
            detail: e.to_string(),
        })?;
        let spec = snapshot_spec(&doc)
            .ok_or_else(|| ServeError::Snapshot {
                detail: "missing scheduler spec".into(),
            })?
            .to_string();
        let scheduler = SchedulerRegistry::builtin().build_str(&spec)?;
        let qlog = QuarantineLog::default();
        let guarded = Box::new(QuarantineGuard::new(scheduler, qlog.clone()));
        let session = SimSession::restore(&doc, guarded)?;
        Ok(Daemon {
            session,
            journal: None,
            chaos: None,
            qlog,
            max_line: MAX_LINE_DEFAULT,
        })
    }

    /// Direct access to the underlying session (tests, embedding).
    pub fn session(&self) -> &SimSession {
        &self.session
    }

    /// The `ready` banner emitted once at startup. Journaled daemons
    /// also report the journal directory and last sequence number.
    pub fn ready_event(&self) -> Value {
        let spec = self.session.state().cluster.spec;
        let mut pairs = vec![
            ("event".into(), Value::Str("ready".into())),
            ("spec".into(), Value::Str(self.session.spec().into())),
            ("nodes".into(), Value::Num(spec.nodes as f64)),
            ("now".into(), Value::Num(self.session.now())),
            (
                "admitted".into(),
                Value::Num(self.session.admitted() as f64),
            ),
        ];
        if let Some(j) = &self.journal {
            pairs.push(("journal".into(), Value::Str(j.dir().display().to_string())));
            pairs.push(("journal_seq".into(), Value::Num(j.last_seq() as f64)));
        }
        obj(pairs)
    }

    /// The `recovered` banner a recovering binary emits after
    /// [`Daemon::recover`].
    pub fn recovered_event(recovery: &Recovery) -> Value {
        obj([
            ("event".into(), Value::Str("recovered".into())),
            ("covered".into(), Value::Num(recovery.covered as f64)),
            ("replayed".into(), Value::Num(recovery.replayed as f64)),
            ("journal_seq".into(), Value::Num(recovery.last_seq as f64)),
            (
                "torn_dropped".into(),
                Value::Num(recovery.torn.as_ref().map_or(0, |t| t.dropped) as f64),
            ),
        ])
    }

    /// Process one command line; returns the response events (already
    /// ordered) and whether to keep serving. Blank lines and `#`
    /// comments produce no events. A malformed or failing command
    /// produces a single `error` event and the daemon keeps serving.
    pub fn handle_line(&mut self, line: &str) -> (Vec<Value>, Flow) {
        if line.len() > self.max_line {
            // Checked before any parsing: the line is discarded whole
            // and the session is untouched.
            return (
                vec![obj([
                    ("event".into(), Value::Str("error".into())),
                    ("kind".into(), Value::Str("oversize".into())),
                    (
                        "message".into(),
                        Value::Str(format!(
                            "line of {} bytes exceeds the {}-byte limit",
                            line.len(),
                            self.max_line
                        )),
                    ),
                ])],
                Flow::Continue,
            );
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return (Vec::new(), Flow::Continue);
        }
        match self.dispatch(line) {
            Ok(out) => out,
            Err(message) => (vec![error_event(message)], Flow::Continue),
        }
    }

    /// Process a run of command lines through the group-commit path:
    /// consecutive journaled commands are staged with one asynchronous
    /// append each, made durable together with a **single** wait on the
    /// journal's writer (one batched write, at most one fsync), and
    /// only then applied in order. Anything else — blank lines,
    /// comments, parse errors, non-journaled commands, oversize lines,
    /// journal-less daemons — is a batch boundary handled by
    /// [`Daemon::handle_line`], so the emitted events are byte-for-byte
    /// what the per-line loop would produce for the same input.
    ///
    /// Returns one `(events, flow)` entry per processed line, in input
    /// order. A non-`Continue` flow is always the last entry: after
    /// `Shutdown` the remaining lines are not read, and after `Crashed`
    /// (the seeded `batch-crash` chaos point, or any armed chaos plan
    /// reached through a boundary line) the staged commands die
    /// unapplied and unacknowledged — exactly the window crash recovery
    /// must cover.
    pub fn handle_batch<S: AsRef<str>>(&mut self, lines: &[S]) -> Vec<(Vec<Value>, Flow)> {
        let mut out = Vec::with_capacity(lines.len());
        let mut pending: Vec<Pending> = Vec::new();
        for line in lines {
            let line = line.as_ref();
            match self.stage(line, &mut pending) {
                Staged::Queued => {}
                Staged::Crashed => {
                    out.push((Vec::new(), Flow::Crashed));
                    return out;
                }
                Staged::Boundary => {
                    self.flush_pending(&mut pending, &mut out);
                    let (events, flow) = self.handle_line(line);
                    let stop = flow != Flow::Continue;
                    out.push((events, flow));
                    if stop {
                        return out;
                    }
                }
            }
        }
        self.flush_pending(&mut pending, &mut out);
        out
    }

    /// Stage one line into the group-commit batch, when it qualifies:
    /// journal attached, within the size limit, parses to a journaled
    /// command, and no chaos plan armed that the sequential path must
    /// handle (only `batch-crash` is batch-aware).
    fn stage(&mut self, line: &str, pending: &mut Vec<Pending>) -> Staged {
        if self.journal.is_none() || line.len() > self.max_line {
            return Staged::Boundary;
        }
        if let Some(chaos) = &self.chaos {
            if !chaos.batch_crash_plan() {
                return Staged::Boundary;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Staged::Boundary;
        }
        let Ok(v) = json::parse(trimmed) else {
            return Staged::Boundary;
        };
        let Some(cmd) = v.get("cmd").and_then(Value::as_str) else {
            return Staged::Boundary;
        };
        if !matches!(
            cmd,
            "submit" | "node-down" | "node-up" | "advance" | "drain"
        ) {
            return Staged::Boundary;
        }
        let cmd = cmd.to_string();
        let crash = matches!(
            self.chaos.as_mut().map(ChaosState::on_append),
            Some(ChaosAction::CrashAfter)
        );
        let j = self.journal.as_mut().expect("checked above");
        let appended = j.append_async(trimmed);
        if crash {
            // The seeded batch-crash: the append is queued (the writer
            // may or may not get it to disk before the process dies)
            // but neither this command nor the staged ones before it
            // are ever applied or acknowledged.
            return Staged::Crashed;
        }
        match appended {
            Ok(seq) => {
                pending.push(Pending { cmd, v, seq });
                Staged::Queued
            }
            // Journal failure: nothing was enqueued and no sequence
            // number was consumed. The sequential path reproduces the
            // same sticky error as an `error` event.
            Err(_) => Staged::Boundary,
        }
    }

    /// Make every staged command durable with one wait on the writer,
    /// then apply them in order, appending each command's events.
    fn flush_pending(&mut self, pending: &mut Vec<Pending>, out: &mut Vec<(Vec<Value>, Flow)>) {
        let Some(last) = pending.last() else { return };
        let wait = self
            .journal
            .as_mut()
            .expect("staged commands imply a journal")
            .wait_durable(last.seq);
        if let Err(e) = wait {
            // Write-ahead discipline: none of the staged commands may
            // be applied. Each reports the journal failure, exactly as
            // the sequential path would have.
            let message = e.to_string();
            for _ in pending.drain(..) {
                out.push((vec![error_event(message.clone())], Flow::Continue));
            }
            return;
        }
        for p in std::mem::take(pending) {
            out.push(match self.apply(&p.cmd, &p.v, Some(p.seq)) {
                Ok(res) => res,
                Err(message) => (vec![error_event(message)], Flow::Continue),
            });
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Vec<Value>, Flow), String> {
        let v = json::parse(line).map_err(|e| format!("bad command line: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| "command object needs a \"cmd\" string".to_string())?;
        // Write-ahead: state-mutating commands hit the journal before
        // the session. A journal failure means the command is NOT
        // applied; a seeded chaos point turns into an immediate crash.
        let mut seq = None;
        if self.journal.is_some()
            && matches!(
                cmd,
                "submit" | "node-down" | "node-up" | "advance" | "drain"
            )
        {
            if let Some(flow) = self.journal_append(line)? {
                return Ok((Vec::new(), flow));
            }
            // The append just consumed this command's sequence number.
            seq = self.journal.as_ref().map(Journal::last_seq);
        }
        self.apply(cmd, &v, seq)
    }

    /// Apply a parsed command that has already cleared the write-ahead
    /// journal (`seq` is its journal sequence number, when journaled).
    fn apply(
        &mut self,
        cmd: &str,
        v: &Value,
        seq: Option<u64>,
    ) -> Result<(Vec<Value>, Flow), String> {
        match cmd {
            "submit" => self.submit(v),
            "node-down" => self.node_event(v, false),
            "node-up" => self.node_event(v, true),
            "advance" => self.advance(v),
            "drain" => self.drain(seq),
            "stats" => Ok((vec![self.stats_event()], Flow::Continue)),
            "snapshot" => self.snapshot(v),
            "shutdown" => {
                let mut done = self.stats_event();
                if let Value::Obj(m) = &mut done {
                    m.insert("event".into(), Value::Str("shutdown".into()));
                }
                Ok((vec![done], Flow::Shutdown))
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// Write-ahead append of `line`, with the chaos hook. `Ok(Some)`
    /// means a seeded crash fired and the caller must return
    /// [`Flow::Crashed`] without applying the command.
    fn journal_append(&mut self, line: &str) -> Result<Option<Flow>, String> {
        let action = self
            .chaos
            .as_mut()
            .map_or(ChaosAction::Proceed, ChaosState::on_append);
        let j = self.journal.as_mut().expect("caller checked journal");
        match action {
            ChaosAction::CrashBefore => Ok(Some(Flow::Crashed)),
            ChaosAction::Torn { keep } => {
                j.append_torn(line, keep).map_err(|e| e.to_string())?;
                Ok(Some(Flow::Crashed))
            }
            ChaosAction::Proceed => {
                j.append(line).map_err(|e| e.to_string())?;
                Ok(None)
            }
            ChaosAction::CrashAfter => {
                j.append(line).map_err(|e| e.to_string())?;
                Ok(Some(Flow::Crashed))
            }
        }
    }

    fn submit(&mut self, v: &Value) -> Result<(Vec<Value>, Flow), String> {
        let time = opt_num(v, "time")?.unwrap_or_else(|| self.session.now());
        let tasks = opt_num(v, "tasks")?.unwrap_or(1.0) as u32;
        let cpu = req_num(v, "cpu")?;
        let mem = req_num(v, "mem")?;
        let runtime = req_num(v, "runtime")?;
        let next = JobId(self.session.state().jobs.len() as u32);
        if let Some(want) = opt_num(v, "id")? {
            if want as u32 != next.0 {
                return Err(format!("job id {want} out of order; the next id is {next}"));
            }
        }
        let mut job =
            JobSpec::new(next, time, tasks, cpu, mem, runtime).map_err(|e| e.to_string())?;
        if let Some(gpu) = opt_num(v, "gpu")? {
            job = job.with_gpu(gpu).map_err(|e| e.to_string())?;
        }
        let id = self.session.submit(job).map_err(|e| e.to_string())?;
        let mut events = vec![obj([
            ("event".into(), Value::Str("submitted".into())),
            ("job".into(), Value::Num(id.0 as f64)),
            ("time".into(), Value::Num(time)),
        ])];
        self.drain_outputs(&mut events);
        self.process_quarantines(&mut events);
        Ok((events, Flow::Continue))
    }

    fn node_event(&mut self, v: &Value, up: bool) -> Result<(Vec<Value>, Flow), String> {
        let time = opt_num(v, "time")?.unwrap_or_else(|| self.session.now());
        let node = NodeId(req_num(v, "node")? as u32);
        self.session
            .node_event(time, node, up)
            .map_err(|e| e.to_string())?;
        let mut events = vec![obj([
            ("event".into(), Value::Str("node".into())),
            ("node".into(), Value::Num(node.0 as f64)),
            ("up".into(), Value::Bool(up)),
            ("time".into(), Value::Num(time)),
        ])];
        self.drain_outputs(&mut events);
        self.process_quarantines(&mut events);
        Ok((events, Flow::Continue))
    }

    fn advance(&mut self, v: &Value) -> Result<(Vec<Value>, Flow), String> {
        let time = req_num(v, "time")?;
        self.session.advance_to(time).map_err(|e| e.to_string())?;
        let mut events = Vec::new();
        self.drain_outputs(&mut events);
        self.process_quarantines(&mut events);
        events.push(obj([
            ("event".into(), Value::Str("advanced".into())),
            ("now".into(), Value::Num(self.session.now())),
        ]));
        Ok((events, Flow::Continue))
    }

    /// The `drained` ack. Journaled daemons also report this drain's
    /// own journal sequence number, so clients know what is durable.
    /// (`seq` rather than the journal's high-water mark: under the
    /// batched path later commands may already hold higher numbers when
    /// the drain is applied.)
    fn drained_event(&self, seq: Option<u64>) -> Value {
        let mut pairs = vec![
            ("event".into(), Value::Str("drained".into())),
            ("now".into(), Value::Num(self.session.now())),
            (
                "completed".into(),
                Value::Num(self.session.completed() as f64),
            ),
        ];
        if let Some(j) = &self.journal {
            let seq = seq.unwrap_or_else(|| j.last_seq());
            pairs.push(("journal_seq".into(), Value::Num(seq as f64)));
        }
        obj(pairs)
    }

    fn drain(&mut self, seq: Option<u64>) -> Result<(Vec<Value>, Flow), String> {
        let mut events = Vec::new();
        if let Err(e) = self.session.drain() {
            // A scheduler fault (quarantine pending) can leave the drain
            // deadlocked on a job the guard wants canceled. Cancel and
            // retry once; a drain that fails with nothing quarantined is
            // the client's problem and reports as a plain error.
            if self.qlog.is_empty() {
                return Err(e.to_string());
            }
            self.drain_outputs(&mut events);
            if self.process_quarantines(&mut events) == 0 {
                events.push(obj([
                    ("event".into(), Value::Str("error".into())),
                    ("message".into(), Value::Str(e.to_string())),
                ]));
                return Ok((events, Flow::Continue));
            }
            if let Err(e2) = self.session.drain() {
                self.drain_outputs(&mut events);
                self.process_quarantines(&mut events);
                events.push(obj([
                    ("event".into(), Value::Str("error".into())),
                    ("message".into(), Value::Str(e2.to_string())),
                ]));
                return Ok((events, Flow::Continue));
            }
        }
        self.drain_outputs(&mut events);
        self.process_quarantines(&mut events);
        events.push(self.drained_event(seq));
        Ok((events, Flow::Continue))
    }

    fn snapshot(&mut self, v: &Value) -> Result<(Vec<Value>, Flow), String> {
        let doc = self.session.snapshot().map_err(|e| e.to_string())?;
        let text = doc.pretty();
        // Journal integration: the snapshot anchors a segment rotation
        // (or, under chaos, a torn temp file and a crash).
        let mut journal_seq = None;
        if let Some(j) = &mut self.journal {
            if let Some(keep) = self.chaos.as_mut().and_then(ChaosState::on_snapshot) {
                j.torn_snapshot(&text, keep).map_err(|e| e.to_string())?;
                return Ok((Vec::new(), Flow::Crashed));
            }
            journal_seq = Some(j.mark_snapshot(&text).map_err(|e| e.to_string())?);
        }
        let mut pairs = match v.get("path").and_then(Value::as_str) {
            Some(path) => {
                std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
                vec![
                    ("event".into(), Value::Str("snapshot".into())),
                    ("path".into(), Value::Str(path.into())),
                    ("bytes".into(), Value::Num(text.len() as f64)),
                ]
            }
            None => vec![
                ("event".into(), Value::Str("snapshot".into())),
                ("data".into(), doc),
            ],
        };
        if let Some(covered) = journal_seq {
            pairs.push(("journal_seq".into(), Value::Num(covered as f64)));
        }
        Ok((vec![obj(pairs)], Flow::Continue))
    }

    fn stats_event(&self) -> Value {
        obj([
            ("event".into(), Value::Str("stats".into())),
            ("spec".into(), Value::Str(self.session.spec().into())),
            ("now".into(), Value::Num(self.session.now())),
            ("live".into(), Value::Num(self.session.live_jobs() as f64)),
            (
                "admitted".into(),
                Value::Num(self.session.admitted() as f64),
            ),
            (
                "completed".into(),
                Value::Num(self.session.completed() as f64),
            ),
            (
                "events_processed".into(),
                Value::Num(self.session.events_processed() as f64),
            ),
            ("quiescent".into(), Value::Bool(self.session.is_quiescent())),
        ])
    }

    /// Pull everything the last command produced out of the session:
    /// timeline entries become `decision` events, completed jobs become
    /// `record` events.
    fn drain_outputs(&mut self, out: &mut Vec<Value>) {
        for e in self.session.take_timeline() {
            out.push(decision_event(&e));
        }
        for r in self.session.take_records() {
            out.push(record_event(&r));
        }
    }

    /// Act on quarantine notes the guard pushed during the last
    /// command: emit a typed `error` event per fault and cancel the
    /// attributed job. Canceling may itself tick the (faulty) scheduler
    /// and produce more notes, so loop until the log is dry. Returns
    /// the number of jobs successfully canceled.
    fn process_quarantines(&mut self, out: &mut Vec<Value>) -> usize {
        let mut canceled = 0;
        let mut reported: Vec<(Option<JobId>, String)> = Vec::new();
        loop {
            let notes = self.qlog.take();
            if notes.is_empty() {
                return canceled;
            }
            for note in notes {
                let key = (note.job, note.reason.clone());
                if reported.contains(&key) {
                    // The same fault repeats every round the bad entry
                    // reappears in; one report is enough.
                    continue;
                }
                reported.push(key);
                let mut pairs = vec![
                    ("event".into(), Value::Str("error".into())),
                    ("kind".into(), Value::Str("quarantine".into())),
                ];
                if let Some(j) = note.job {
                    pairs.push(("job".into(), Value::Num(j.0 as f64)));
                }
                pairs.push(("message".into(), Value::Str(note.reason)));
                out.push(obj(pairs));
                let Some(job) = note.job else { continue };
                match self.session.cancel(job) {
                    Ok(()) => {
                        canceled += 1;
                        self.drain_outputs(out);
                    }
                    // Already canceled (a duplicate attribution) or
                    // already gone: nothing left to contain.
                    Err(SimError::NotCancelable { .. }) | Err(SimError::UnknownJob { .. }) => {}
                    Err(e) => out.push(obj([
                        ("event".into(), Value::Str("error".into())),
                        ("kind".into(), Value::Str("quarantine".into())),
                        ("job".into(), Value::Num(job.0 as f64)),
                        (
                            "message".into(),
                            Value::Str(format!("canceling quarantined {job}: {e}")),
                        ),
                    ])),
                }
            }
        }
    }
}

/// A journaled command staged by [`Daemon::handle_batch`]: parsed,
/// sequence-numbered, and awaiting its group-commit ack.
struct Pending {
    cmd: String,
    v: Value,
    seq: u64,
}

/// Outcome of staging one line into the group-commit batch.
enum Staged {
    /// Journaled and queued; durability and application are deferred.
    Queued,
    /// Not batchable — flush the staged run, then hand the line to the
    /// sequential path.
    Boundary,
    /// A seeded `batch-crash` fired: die with the staged run unapplied.
    Crashed,
}

/// The protocol's uniform failure shape — commands never kill the
/// daemon, they answer with one of these.
fn error_event(message: String) -> Value {
    obj([
        ("event".into(), Value::Str("error".into())),
        ("message".into(), Value::Str(message)),
    ])
}

fn decision_event(e: &TimelineEntry) -> Value {
    let nodes = |ns: &[NodeId]| Value::Arr(ns.iter().map(|n| Value::Num(n.0 as f64)).collect());
    let mut pairs: Vec<(String, Value)> = vec![
        ("event".into(), Value::Str("decision".into())),
        ("time".into(), Value::Num(e.time)),
        ("job".into(), Value::Num(e.job.0 as f64)),
    ];
    let action = match &e.event {
        AllocEvent::Start { nodes: ns, yld } => {
            pairs.push(("nodes".into(), nodes(ns)));
            pairs.push(("yield".into(), Value::Num(*yld)));
            "start"
        }
        AllocEvent::Adjust { yld } => {
            pairs.push(("yield".into(), Value::Num(*yld)));
            "adjust"
        }
        AllocEvent::Migrate {
            nodes: ns,
            yld,
            moved,
        } => {
            pairs.push(("nodes".into(), nodes(ns)));
            pairs.push(("yield".into(), Value::Num(*yld)));
            pairs.push(("moved".into(), Value::Num(*moved as f64)));
            "migrate"
        }
        AllocEvent::Pause => "pause",
        AllocEvent::Kill => "kill",
        AllocEvent::Resume { nodes: ns, yld } => {
            pairs.push(("nodes".into(), nodes(ns)));
            pairs.push(("yield".into(), Value::Num(*yld)));
            "resume"
        }
        AllocEvent::Complete => "complete",
        AllocEvent::Cancel { was_running } => {
            pairs.push(("was_running".into(), Value::Bool(*was_running)));
            "cancel"
        }
    };
    pairs.push(("action".into(), Value::Str(action.into())));
    obj(pairs)
}

fn record_event(r: &JobRecord) -> Value {
    obj([
        ("event".into(), Value::Str("record".into())),
        ("job".into(), Value::Num(r.id.0 as f64)),
        ("submit".into(), Value::Num(r.submit)),
        (
            "start".into(),
            r.first_start.map_or(Value::Null, Value::Num),
        ),
        ("completion".into(), Value::Num(r.completion)),
        ("turnaround".into(), Value::Num(r.turnaround)),
        ("stretch".into(), Value::Num(r.stretch)),
        ("preemptions".into(), Value::Num(r.preemptions as f64)),
        ("migrations".into(), Value::Num(r.migrations as f64)),
        ("restarts".into(), Value::Num(r.restarts as f64)),
    ])
}

fn req_num(v: &Value, key: &str) -> Result<f64, String> {
    opt_num(v, key)?.ok_or_else(|| format!("command needs a numeric {key:?} field"))
}

fn opt_num(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a number")),
    }
}

// Unwrap audit: production paths in this crate return typed errors
// (`ServeError`, `JournalError`) — the only `expect`s left state the
// invariant that makes them unreachable (e.g. "caller checked
// journal"). The unwraps below are test assertions, where panicking
// with a backtrace *is* the failure report.
#[cfg(test)]
mod tests {
    use super::*;

    fn daemon(spec: &str) -> Daemon {
        Daemon::new(
            ClusterSpec::new(4, 4, 8.0).unwrap(),
            spec,
            SimConfig::default(),
        )
        .unwrap()
    }

    fn lines(d: &mut Daemon, line: &str) -> Vec<String> {
        let (events, _) = d.handle_line(line);
        events.iter().map(Value::compact).collect()
    }

    #[test]
    fn submit_emits_decisions_and_records() {
        let mut d = daemon("greedy-pmtn");
        let out = lines(
            &mut d,
            r#"{"cmd":"submit","time":0,"cpu":0.5,"mem":0.2,"runtime":100}"#,
        );
        assert!(out[0].contains(r#""event":"submitted""#), "{out:?}");
        assert!(
            out.iter().any(|l| l.contains(r#""action":"start""#)),
            "{out:?}"
        );
        let out = lines(&mut d, r#"{"cmd":"drain"}"#);
        assert!(
            out.iter().any(|l| l.contains(r#""event":"record""#)),
            "{out:?}"
        );
        assert!(out.last().unwrap().contains(r#""event":"drained""#));
    }

    #[test]
    fn errors_keep_the_daemon_serving() {
        let mut d = daemon("fcfs");
        for bad in [
            "not json",
            r#"{"nocmd":1}"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"submit","cpu":0.5,"mem":0.2}"#,
            r#"{"cmd":"submit","time":-5,"cpu":0.5,"mem":0.2,"runtime":10}"#,
            r#"{"cmd":"node-down","node":99}"#,
            r#"{"cmd":"advance","time":-1}"#,
        ] {
            let (events, flow) = d.handle_line(bad);
            assert_eq!(flow, Flow::Continue, "{bad}");
            assert_eq!(events.len(), 1, "{bad}");
            assert_eq!(events[0].get("event").unwrap().as_str(), Some("error"));
        }
        // Still alive and consistent.
        let out = lines(
            &mut d,
            r#"{"cmd":"submit","time":0,"cpu":0.5,"mem":0.2,"runtime":10}"#,
        );
        assert!(out[0].contains(r#""job":0"#), "{out:?}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut d = daemon("fcfs");
        assert!(d.handle_line("").0.is_empty());
        assert!(d.handle_line("  # scripted pause").0.is_empty());
    }

    #[test]
    fn explicit_out_of_order_id_is_rejected() {
        let mut d = daemon("fcfs");
        let (events, _) =
            d.handle_line(r#"{"cmd":"submit","id":3,"cpu":0.5,"mem":0.2,"runtime":10}"#);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("error"));
        let (events, _) =
            d.handle_line(r#"{"cmd":"submit","id":0,"cpu":0.5,"mem":0.2,"runtime":10}"#);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("submitted"));
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let script_prefix = [
            r#"{"cmd":"submit","time":0,"tasks":2,"cpu":0.5,"mem":0.25,"runtime":600}"#,
            r#"{"cmd":"submit","time":10,"cpu":1.0,"mem":0.5,"runtime":300}"#,
            r#"{"cmd":"node-down","time":60,"node":1}"#,
            r#"{"cmd":"node-up","time":120,"node":1}"#,
            r#"{"cmd":"drain"}"#,
        ];
        let script_suffix = [
            r#"{"cmd":"submit","time":2000,"cpu":0.5,"mem":0.25,"runtime":120}"#,
            r#"{"cmd":"submit","time":2030,"tasks":3,"cpu":0.75,"mem":0.3,"runtime":400}"#,
            r#"{"cmd":"drain"}"#,
            r#"{"cmd":"stats"}"#,
        ];
        let spec = "dynmcb8-per:t=300";

        // Uninterrupted daemon.
        let mut a = daemon(spec);
        for line in script_prefix {
            a.handle_line(line);
        }
        let a_suffix: Vec<String> = script_suffix
            .iter()
            .flat_map(|l| lines(&mut a, l))
            .collect();

        // Snapshot after the prefix, restore from the *text* form, and
        // replay the suffix: byte-identical events.
        let mut b = daemon(spec);
        for line in script_prefix {
            b.handle_line(line);
        }
        let (events, _) = b.handle_line(r#"{"cmd":"snapshot"}"#);
        let doc = events[0].get("data").unwrap();
        let mut b = Daemon::restore(&doc.pretty()).unwrap();
        let b_suffix: Vec<String> = script_suffix
            .iter()
            .flat_map(|l| lines(&mut b, l))
            .collect();

        assert_eq!(a_suffix, b_suffix);
    }

    #[test]
    fn snapshot_of_a_busy_session_is_an_error_event() {
        let mut d = daemon("fcfs");
        d.handle_line(r#"{"cmd":"submit","time":0,"cpu":0.5,"mem":0.2,"runtime":100}"#);
        let (events, _) = d.handle_line(r#"{"cmd":"snapshot"}"#);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("error"));
        assert!(events[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("quiescen"));
    }

    #[test]
    fn construction_failures_are_typed() {
        let cluster = ClusterSpec::new(4, 4, 8.0).unwrap();
        let err = Daemon::new(cluster, "no-such-scheduler", SimConfig::default())
            .err()
            .unwrap();
        assert!(matches!(err, DaemonError::Spec(_)), "{err}");

        let err = Daemon::restore("not json at all").err().unwrap();
        assert!(matches!(err, DaemonError::Snapshot { .. }), "{err}");
        assert!(err.to_string().starts_with("snapshot:"), "{err}");

        let err = Daemon::restore("{}").err().unwrap();
        assert!(matches!(err, DaemonError::Snapshot { .. }), "{err}");
        assert!(err.to_string().contains("missing scheduler spec"), "{err}");

        // Well-formed JSON with a spec but nothing else: the session
        // rejects it with a typed SimError.
        let err = Daemon::restore(r#"{"spec": "fcfs"}"#).err().unwrap();
        assert!(
            matches!(
                err,
                DaemonError::Sim(dfrs_sim::SimError::SnapshotMalformed { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn shutdown_stops_the_flow() {
        let mut d = daemon("fcfs");
        let (events, flow) = d.handle_line(r#"{"cmd":"shutdown"}"#);
        assert_eq!(flow, Flow::Shutdown);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("shutdown"));
    }
}
