//! # dfrs-workload
//!
//! Workload generation and parsing for the DFRS evaluation (Section IV-C
//! of the IPDPS 2010 paper).
//!
//! Three sources of jobs are supported:
//!
//! 1. **Synthetic traces** from the Lublin–Feitelson model
//!    ([`lublin`]) — arrival times, job sizes and runtimes — annotated
//!    with the paper's CPU-need and memory-requirement rules
//!    ([`annotate`]) and rescaled to target offered loads ([`trace`]).
//! 2. **Real traces** in Standard Workload Format ([`swf`]), processed by
//!    the paper's HPC2N rules ([`hpc2n`]) into task counts, CPU needs and
//!    memory requirements.
//! 3. An **HPC2N-like synthetic generator** ([`hpc2n`]) substituting for
//!    the real 182-week trace when it is not on disk, calibrated to the
//!    property the paper's analysis leans on: a large population of
//!    short-duration serial jobs alongside long parallel jobs.
//!
//! All generation is deterministic given a seed (`rand::rngs::SmallRng`).
//!
//! The custom samplers in [`distributions`] (gamma via Marsaglia–Tsang,
//! hyper-gamma, two-stage log-uniform) exist because the approved crate
//! set includes `rand` but not `rand_distr`.
//!
//! ```
//! use dfrs_core::ClusterSpec;
//! use dfrs_workload::{Annotator, LublinModel, Trace};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let cluster = ClusterSpec::synthetic();
//! let mut rng = SmallRng::seed_from_u64(7);
//! let raws = LublinModel::for_cluster(&cluster).generate(100, &mut rng);
//! let jobs = Annotator::new(cluster).annotate(&raws, &mut rng)?;
//! let trace = Trace::new(cluster, jobs)?.scale_to_load(0.5)?;
//! assert!((trace.offered_load() - 0.5).abs() < 1e-9);
//! # Ok::<(), dfrs_core::CoreError>(())
//! ```

pub mod annotate;
pub mod characterize;
pub mod distributions;
pub mod downey;
pub mod hpc2n;
pub mod lublin;
pub mod swf;
pub mod trace;

pub use annotate::Annotator;
pub use characterize::{profile, WorkloadProfile};
pub use downey::{DowneyModel, DowneyParams};
pub use hpc2n::{hpc2n_preprocess, Hpc2nLikeGenerator};
pub use lublin::{LublinModel, LublinParams};
pub use swf::{parse_swf, write_swf, SwfRecord};
pub use trace::Trace;
