//! Traces: ordered job collections bound to a cluster, with offered-load
//! computation, inter-arrival scaling, and weekly splitting.
//!
//! **Offered load** (Section IV-C, following Batat & Feitelson) is the
//! ratio of the work submitted to the capacity offered over the
//! submission window:
//!
//! ```text
//! load = Σ_j tasks_j · runtime_j  /  (nodes · span)
//! ```
//!
//! where `span` is the time between the first and last submissions.
//! Multiplying every inter-arrival gap by a constant `k` multiplies the
//! span by `k` and therefore divides the load by `k`, which is how the
//! paper turns 100 base traces into 900 traces with loads 0.1–0.9.

use dfrs_core::ids::JobId;
use dfrs_core::{ClusterSpec, CoreError, JobSpec};

/// Seconds in a week (HPC2N segment length).
pub const WEEK_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// An immutable trace: jobs sorted by submission time with dense ids,
/// plus the cluster they target.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The cluster the trace was generated for.
    pub cluster: ClusterSpec,
    jobs: Vec<JobSpec>,
}

impl Trace {
    /// Build a trace. Jobs are sorted by submission time (stable, so
    /// equal-time jobs keep their given order) and re-assigned dense ids.
    ///
    /// # Errors
    /// Rejects jobs with more tasks than any feasible allocation could
    /// host (`tasks > nodes` would make batch stretch infinite and DFRS
    /// memory-infeasible whenever `tasks × mem > nodes`).
    pub fn new(cluster: ClusterSpec, mut jobs: Vec<JobSpec>) -> Result<Self, CoreError> {
        for j in &jobs {
            if j.tasks > cluster.nodes {
                return Err(CoreError::Infeasible {
                    reason: format!(
                        "job {} has {} tasks but the cluster has {} nodes",
                        j.id, j.tasks, cluster.nodes
                    ),
                });
            }
        }
        jobs.sort_by(|a, b| a.submit_time.total_cmp(&b.submit_time));
        let jobs = jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| {
                JobSpec::new(
                    JobId(i as u32),
                    j.submit_time,
                    j.tasks,
                    j.cpu_need,
                    j.mem_req,
                    j.oracle_runtime(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { cluster, jobs })
    }

    /// The jobs, sorted by submission time.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submission window: last submit − first submit (0 for ≤ 1 job).
    pub fn span(&self) -> f64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(f), Some(l)) => l.submit_time - f.submit_time,
            _ => 0.0,
        }
    }

    /// Total work: `Σ tasks · runtime` in node-seconds.
    pub fn total_node_seconds(&self) -> f64 {
        self.jobs.iter().map(JobSpec::node_seconds).sum()
    }

    /// Offered load (see module docs). For degenerate traces whose
    /// submissions all coincide (span 0), the longest runtime serves as
    /// the window instead.
    pub fn offered_load(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let mut span = self.span();
        if span <= 0.0 {
            span = self
                .jobs
                .iter()
                .map(|j| j.oracle_runtime())
                .fold(0.0, f64::max);
        }
        self.total_node_seconds() / (self.cluster.nodes as f64 * span)
    }

    /// A copy with every inter-arrival gap multiplied by `factor`
    /// (runtimes and resource requirements untouched; first submission
    /// preserved).
    pub fn scale_interarrival(&self, factor: f64) -> Result<Trace, CoreError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(CoreError::NonPositive {
                what: "scale factor",
                value: factor,
            });
        }
        let Some(first) = self.jobs.first() else {
            return Ok(self.clone());
        };
        let t0 = first.submit_time;
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                JobSpec::new(
                    j.id,
                    t0 + (j.submit_time - t0) * factor,
                    j.tasks,
                    j.cpu_need,
                    j.mem_req,
                    j.oracle_runtime(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Trace::new(self.cluster, jobs)
    }

    /// A copy rescaled so its offered load equals `target` (paper:
    /// targets 0.1–0.9 in steps of 0.1).
    pub fn scale_to_load(&self, target: f64) -> Result<Trace, CoreError> {
        if !target.is_finite() || target <= 0.0 {
            return Err(CoreError::NonPositive {
                what: "target load",
                value: target,
            });
        }
        let current = self.offered_load();
        if current == 0.0 {
            return Err(CoreError::Infeasible {
                reason: "cannot rescale an empty or zero-work trace".into(),
            });
        }
        self.scale_interarrival(current / target)
    }

    /// Split into consecutive one-week segments by submission time, each
    /// re-based to start at 0 (the paper cuts HPC2N into 182 such
    /// segments). Empty weeks are dropped.
    pub fn split_weeks(&self) -> Vec<Trace> {
        self.split_windows(WEEK_SECS)
    }

    /// Split into `window`-second segments (see [`Trace::split_weeks`]).
    pub fn split_windows(&self, window: f64) -> Vec<Trace> {
        assert!(window > 0.0);
        let mut out = Vec::new();
        let mut current: Vec<JobSpec> = Vec::new();
        let mut window_idx = 0u64;
        for j in &self.jobs {
            let idx = (j.submit_time / window).floor() as u64;
            if idx != window_idx && !current.is_empty() {
                out.push(Trace::new(self.cluster, std::mem::take(&mut current)).expect("subset"));
            }
            window_idx = idx;
            let base = idx as f64 * window;
            current.push(
                JobSpec::new(
                    j.id,
                    j.submit_time - base,
                    j.tasks,
                    j.cpu_need,
                    j.mem_req,
                    j.oracle_runtime(),
                )
                .expect("re-based job stays valid"),
            );
        }
        if !current.is_empty() {
            out.push(Trace::new(self.cluster, current).expect("subset"));
        }
        out
    }

    /// Largest task count in the trace.
    pub fn max_tasks(&self) -> u32 {
        self.jobs.iter().map(|j| j.tasks).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64, tasks: u32, runtime: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, 1.0, 0.1, runtime).unwrap()
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(4, 4, 8.0).unwrap()
    }

    #[test]
    fn new_sorts_and_reindexes() {
        let t = Trace::new(
            cluster(),
            vec![
                job(0, 50.0, 1, 10.0),
                job(1, 10.0, 2, 10.0),
                job(2, 30.0, 1, 10.0),
            ],
        )
        .unwrap();
        let submits: Vec<f64> = t.jobs().iter().map(|j| j.submit_time).collect();
        assert_eq!(submits, vec![10.0, 30.0, 50.0]);
        let ids: Vec<u32> = t.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_job_rejected() {
        let r = Trace::new(cluster(), vec![job(0, 0.0, 5, 10.0)]);
        assert!(matches!(r, Err(CoreError::Infeasible { .. })));
    }

    #[test]
    fn offered_load_formula() {
        // Two jobs: 2×100 + 1×100 node-seconds = 300 over 4 nodes × 100 s.
        let t = Trace::new(
            cluster(),
            vec![job(0, 0.0, 2, 100.0), job(1, 100.0, 1, 100.0)],
        )
        .unwrap();
        assert!((t.offered_load() - 300.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn offered_load_single_job_uses_runtime_window() {
        let t = Trace::new(cluster(), vec![job(0, 0.0, 2, 50.0)]).unwrap();
        // span = 0 → window = runtime 50; load = 100/(4×50) = 0.5.
        assert!((t.offered_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scale_interarrival_scales_span_linearly() {
        let t = Trace::new(
            cluster(),
            vec![
                job(0, 10.0, 1, 5.0),
                job(1, 20.0, 1, 5.0),
                job(2, 40.0, 1, 5.0),
            ],
        )
        .unwrap();
        let s = t.scale_interarrival(3.0).unwrap();
        assert_eq!(s.jobs()[0].submit_time, 10.0);
        assert_eq!(s.jobs()[1].submit_time, 40.0);
        assert_eq!(s.jobs()[2].submit_time, 100.0);
        assert!((s.span() - 3.0 * t.span()).abs() < 1e-9);
    }

    #[test]
    fn scale_to_load_hits_target() {
        let jobs: Vec<JobSpec> = (0..50)
            .map(|i| job(i, i as f64 * 60.0, 1 + (i % 4), 400.0))
            .collect();
        let t = Trace::new(cluster(), jobs).unwrap();
        for target in [0.1, 0.5, 0.9] {
            let s = t.scale_to_load(target).unwrap();
            assert!(
                (s.offered_load() - target).abs() < 1e-9,
                "target {target} got {}",
                s.offered_load()
            );
        }
    }

    #[test]
    fn scale_rejects_bad_factors() {
        let t = Trace::new(cluster(), vec![job(0, 0.0, 1, 5.0)]).unwrap();
        assert!(t.scale_interarrival(0.0).is_err());
        assert!(t.scale_interarrival(-2.0).is_err());
        assert!(t.scale_to_load(0.0).is_err());
    }

    #[test]
    fn split_weeks_rebases_each_segment() {
        let jobs = vec![
            job(0, 100.0, 1, 5.0),
            job(1, WEEK_SECS + 50.0, 1, 5.0),
            job(2, WEEK_SECS + 60.0, 1, 5.0),
            job(3, 3.0 * WEEK_SECS + 1.0, 1, 5.0),
        ];
        let t = Trace::new(cluster(), jobs).unwrap();
        let weeks = t.split_weeks();
        assert_eq!(weeks.len(), 3, "empty week dropped");
        assert_eq!(weeks[0].len(), 1);
        assert_eq!(weeks[1].len(), 2);
        assert_eq!(weeks[1].jobs()[0].submit_time, 50.0);
        assert_eq!(weeks[2].jobs()[0].submit_time, 1.0);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new(cluster(), vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.offered_load(), 0.0);
        assert_eq!(t.span(), 0.0);
        assert!(t.split_weeks().is_empty());
        assert!(t.scale_to_load(0.5).is_err());
    }

    #[test]
    fn stable_sort_keeps_equal_time_order() {
        let t = Trace::new(
            cluster(),
            vec![
                job(7, 10.0, 1, 1.0),
                job(8, 10.0, 2, 1.0),
                job(9, 10.0, 3, 1.0),
            ],
        )
        .unwrap();
        let tasks: Vec<u32> = t.jobs().iter().map(|j| j.tasks).collect();
        assert_eq!(tasks, vec![1, 2, 3]);
    }
}
