//! CPU-need and memory-requirement annotation of synthetic jobs
//! (Section IV-C).
//!
//! The Lublin model provides sizes and runtimes only. The paper adds:
//!
//! * **CPU needs** — all tasks are pessimistically assumed CPU-bound;
//!   the single task of a one-task job is assumed sequential (needs one
//!   core, i.e. `1/cores` of a node), all other tasks are assumed
//!   multi-threaded (need 100 % of a node).
//! * **Memory** — following Setia et al.: 55 % of jobs require 10 % of
//!   node memory per task; the rest require `10·x %` with `x` uniform on
//!   `{2, …, 10}`.

use rand::Rng;

use dfrs_core::ids::JobId;
use dfrs_core::{ClusterSpec, CoreError, JobSpec};

use crate::lublin::RawJob;

/// Annotates raw (size, runtime) jobs with CPU needs and memory
/// requirements per the paper's rules.
#[derive(Debug, Clone, Copy)]
pub struct Annotator {
    cluster: ClusterSpec,
    /// Probability of the light memory class (paper: 0.55).
    pub light_mem_prob: f64,
}

impl Annotator {
    /// Annotator for the given cluster with the paper's constants.
    pub fn new(cluster: ClusterSpec) -> Self {
        Annotator {
            cluster,
            light_mem_prob: 0.55,
        }
    }

    /// CPU need of a job of `tasks` tasks: sequential (one core) for
    /// one-task jobs, full node otherwise.
    pub fn cpu_need(&self, tasks: u32) -> f64 {
        if tasks == 1 {
            self.cluster.sequential_cpu_need()
        } else {
            1.0
        }
    }

    /// Draw a per-task memory requirement.
    pub fn sample_mem_req<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen_bool(self.light_mem_prob) {
            0.1
        } else {
            0.1 * rng.gen_range(2..=10) as f64
        }
    }

    /// Annotate a raw job into a full [`JobSpec`].
    pub fn annotate_one<R: Rng + ?Sized>(
        &self,
        id: JobId,
        raw: &RawJob,
        rng: &mut R,
    ) -> Result<JobSpec, CoreError> {
        JobSpec::new(
            id,
            raw.submit,
            raw.tasks,
            self.cpu_need(raw.tasks),
            self.sample_mem_req(rng),
            raw.runtime,
        )
    }

    /// Annotate a whole raw trace (ids assigned in order).
    pub fn annotate<R: Rng + ?Sized>(
        &self,
        raws: &[RawJob],
        rng: &mut R,
    ) -> Result<Vec<JobSpec>, CoreError> {
        raws.iter()
            .enumerate()
            .map(|(i, raw)| self.annotate_one(JobId(i as u32), raw, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn annotator() -> Annotator {
        Annotator::new(ClusterSpec::synthetic())
    }

    fn raw(tasks: u32) -> RawJob {
        RawJob {
            submit: 5.0,
            tasks,
            runtime: 100.0,
        }
    }

    #[test]
    fn sequential_tasks_need_one_core() {
        assert!((annotator().cpu_need(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_need_full_node() {
        assert_eq!(annotator().cpu_need(2), 1.0);
        assert_eq!(annotator().cpu_need(128), 1.0);
    }

    #[test]
    fn hpc2n_cluster_sequential_need_is_half() {
        let a = Annotator::new(ClusterSpec::hpc2n());
        assert!((a.cpu_need(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_distribution_matches_model() {
        let a = annotator();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut light = 0usize;
        let mut heavy_values = std::collections::BTreeMap::<u32, usize>::new();
        for _ in 0..n {
            let m = a.sample_mem_req(&mut rng);
            assert!((0.1 - 1e-12..=1.0 + 1e-12).contains(&m));
            let decile = (m * 10.0).round() as u32;
            if decile == 1 {
                light += 1;
            } else {
                *heavy_values.entry(decile).or_default() += 1;
            }
        }
        let light_frac = light as f64 / n as f64;
        assert!(
            (light_frac - 0.55).abs() < 0.01,
            "light fraction {light_frac}"
        );
        // Heavy deciles 2..=10 roughly uniform: each ≈ 5 % of all jobs.
        for d in 2..=10u32 {
            let f = *heavy_values.get(&d).unwrap_or(&0) as f64 / n as f64;
            assert!((f - 0.05).abs() < 0.01, "decile {d} fraction {f}");
        }
    }

    #[test]
    fn annotate_preserves_submit_size_runtime() {
        let a = annotator();
        let mut rng = SmallRng::seed_from_u64(1);
        let raws = vec![raw(1), raw(16)];
        let jobs = a.annotate(&raws, &mut rng).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, JobId(0));
        assert_eq!(jobs[1].id, JobId(1));
        assert_eq!(jobs[1].tasks, 16);
        assert_eq!(jobs[0].submit_time, 5.0);
        assert_eq!(jobs[0].oracle_runtime(), 100.0);
        assert!((jobs[0].cpu_need - 0.25).abs() < 1e-12);
        assert_eq!(jobs[1].cpu_need, 1.0);
    }

    #[test]
    fn annotation_is_deterministic() {
        let a = annotator();
        let raws: Vec<RawJob> = (0..50).map(|i| raw(1 + (i % 8))).collect();
        let j1 = a.annotate(&raws, &mut SmallRng::seed_from_u64(9)).unwrap();
        let j2 = a.annotate(&raws, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(j1, j2);
    }
}
