//! Standard Workload Format (SWF) parsing and writing.
//!
//! SWF is the format of the Parallel Workloads Archive the paper draws
//! HPC2N from: one job per line, 18 whitespace-separated numeric fields,
//! `-1` for unknown values, and `;`-prefixed comment/header lines (e.g.
//! `; MaxNodes: 120`). This module implements the full format so the real
//! `HPC2N-2002-*.swf` file can be dropped into the pipeline; the rest of
//! the workspace otherwise uses the HPC2N-like synthetic generator.

use dfrs_core::CoreError;

/// One SWF job record. Field names follow the official specification;
/// `-1` (or `-1.0`) encodes "unknown" exactly as in the format.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfRecord {
    /// 1. Job number.
    pub job_id: i64,
    /// 2. Submit time (seconds).
    pub submit: f64,
    /// 3. Wait time (seconds).
    pub wait: f64,
    /// 4. Run time (seconds).
    pub runtime: f64,
    /// 5. Number of allocated processors.
    pub used_procs: i64,
    /// 6. Average CPU time used per processor (seconds).
    pub avg_cpu: f64,
    /// 7. Used memory per processor (KB).
    pub used_mem_kb: f64,
    /// 8. Requested number of processors.
    pub req_procs: i64,
    /// 9. Requested time (seconds).
    pub req_time: f64,
    /// 10. Requested memory per processor (KB).
    pub req_mem_kb: f64,
    /// 11. Completion status.
    pub status: i64,
    /// 12. User id.
    pub uid: i64,
    /// 13. Group id.
    pub gid: i64,
    /// 14. Executable (application) number.
    pub exe: i64,
    /// 15. Queue number.
    pub queue: i64,
    /// 16. Partition number.
    pub partition: i64,
    /// 17. Preceding job number.
    pub prev_job: i64,
    /// 18. Think time from preceding job (seconds).
    pub think_time: f64,
}

impl SwfRecord {
    /// A record with every field unknown (`-1`) — useful as a builder
    /// base for generators and tests.
    pub fn unknown() -> Self {
        SwfRecord {
            job_id: -1,
            submit: -1.0,
            wait: -1.0,
            runtime: -1.0,
            used_procs: -1,
            avg_cpu: -1.0,
            used_mem_kb: -1.0,
            req_procs: -1,
            req_time: -1.0,
            req_mem_kb: -1.0,
            status: -1,
            uid: -1,
            gid: -1,
            exe: -1,
            queue: -1,
            partition: -1,
            prev_job: -1,
            think_time: -1.0,
        }
    }

    /// Processors to schedule: used if known, else requested.
    pub fn effective_procs(&self) -> Option<u32> {
        let p = if self.used_procs > 0 {
            self.used_procs
        } else {
            self.req_procs
        };
        (p > 0).then_some(p as u32)
    }

    /// Per-processor memory in KB: max of used and requested, if either
    /// is known.
    pub fn effective_mem_kb(&self) -> Option<f64> {
        let m = self.used_mem_kb.max(self.req_mem_kb);
        (m > 0.0).then_some(m)
    }
}

/// Parsed header comments: `(key, value)` pairs from lines of the form
/// `; Key: value`.
pub type SwfHeader = Vec<(String, String)>;

fn parse_i(tok: &str, line: usize) -> Result<i64, CoreError> {
    // Some archive files use floats in integer columns; accept and floor.
    tok.parse::<i64>()
        .or_else(|_| tok.parse::<f64>().map(|f| f as i64))
        .map_err(|_| CoreError::Parse {
            line,
            reason: format!("bad integer field {tok:?}"),
        })
}

fn parse_f(tok: &str, line: usize) -> Result<f64, CoreError> {
    tok.parse::<f64>().map_err(|_| CoreError::Parse {
        line,
        reason: format!("bad numeric field {tok:?}"),
    })
}

/// Parse an SWF document into header pairs and records.
///
/// Blank lines are skipped; comment lines (`;` prefix) are mined for
/// `key: value` headers; any data line with fewer than 18 fields is an
/// error (extra fields are tolerated and ignored, as some archive files
/// append annotations).
pub fn parse_swf(input: &str) -> Result<(SwfHeader, Vec<SwfRecord>), CoreError> {
    let mut header = SwfHeader::new();
    let mut records = Vec::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            if let Some((k, v)) = comment.split_once(':') {
                header.push((k.trim().to_string(), v.trim().to_string()));
            }
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 18 {
            return Err(CoreError::Parse {
                line: lineno,
                reason: format!("expected 18 fields, found {}", toks.len()),
            });
        }
        records.push(SwfRecord {
            job_id: parse_i(toks[0], lineno)?,
            submit: parse_f(toks[1], lineno)?,
            wait: parse_f(toks[2], lineno)?,
            runtime: parse_f(toks[3], lineno)?,
            used_procs: parse_i(toks[4], lineno)?,
            avg_cpu: parse_f(toks[5], lineno)?,
            used_mem_kb: parse_f(toks[6], lineno)?,
            req_procs: parse_i(toks[7], lineno)?,
            req_time: parse_f(toks[8], lineno)?,
            req_mem_kb: parse_f(toks[9], lineno)?,
            status: parse_i(toks[10], lineno)?,
            uid: parse_i(toks[11], lineno)?,
            gid: parse_i(toks[12], lineno)?,
            exe: parse_i(toks[13], lineno)?,
            queue: parse_i(toks[14], lineno)?,
            partition: parse_i(toks[15], lineno)?,
            prev_job: parse_i(toks[16], lineno)?,
            think_time: parse_f(toks[17], lineno)?,
        });
    }
    Ok((header, records))
}

fn fmt_f(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serialize records to SWF text (with optional header comments).
pub fn write_swf(header: &SwfHeader, records: &[SwfRecord]) -> String {
    let mut out = String::new();
    for (k, v) in header {
        out.push_str(&format!("; {k}: {v}\n"));
    }
    for r in records {
        out.push_str(&format!(
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            r.job_id,
            fmt_f(r.submit),
            fmt_f(r.wait),
            fmt_f(r.runtime),
            r.used_procs,
            fmt_f(r.avg_cpu),
            fmt_f(r.used_mem_kb),
            r.req_procs,
            fmt_f(r.req_time),
            fmt_f(r.req_mem_kb),
            r.status,
            r.uid,
            r.gid,
            r.exe,
            r.queue,
            r.partition,
            r.prev_job,
            fmt_f(r.think_time),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxNodes: 120
; MaxProcs: 240

1 0 5 3600 4 -1 102400 4 7200 204800 1 3 1 -1 1 -1 -1 -1
2 60 0 12 1 -1 -1 1 600 -1 0 4 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_header_and_records() {
        let (header, recs) = parse_swf(SAMPLE).unwrap();
        assert_eq!(header.len(), 3);
        assert_eq!(header[1], ("MaxNodes".to_string(), "120".to_string()));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].job_id, 1);
        assert_eq!(recs[0].runtime, 3600.0);
        assert_eq!(recs[0].used_procs, 4);
        assert_eq!(recs[0].used_mem_kb, 102_400.0);
        assert_eq!(recs[1].req_procs, 1);
        assert_eq!(recs[1].used_mem_kb, -1.0);
    }

    #[test]
    fn round_trip_preserves_records() {
        let (header, recs) = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&header, &recs);
        let (h2, r2) = parse_swf(&text).unwrap();
        assert_eq!(header, h2);
        assert_eq!(recs, r2);
    }

    #[test]
    fn short_line_is_an_error_with_line_number() {
        let bad = "1 0 5 3600 4\n";
        match parse_swf(bad) {
            Err(CoreError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_field_is_an_error() {
        let bad = "1 0 5 x 4 -1 -1 4 -1 -1 1 3 1 -1 1 -1 -1 -1\n";
        assert!(parse_swf(bad).is_err());
    }

    #[test]
    fn extra_fields_are_tolerated() {
        let line = "1 0 5 3600 4 -1 -1 4 -1 -1 1 3 1 -1 1 -1 -1 -1 99 98\n";
        let (_, recs) = parse_swf(line).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn float_in_integer_column_is_floored() {
        let line = "1 0 5 3600 4.0 -1 -1 4 -1 -1 1 3 1 -1 1 -1 -1 -1\n";
        let (_, recs) = parse_swf(line).unwrap();
        assert_eq!(recs[0].used_procs, 4);
    }

    #[test]
    fn effective_procs_prefers_used() {
        let mut r = SwfRecord::unknown();
        r.req_procs = 8;
        assert_eq!(r.effective_procs(), Some(8));
        r.used_procs = 4;
        assert_eq!(r.effective_procs(), Some(4));
        assert_eq!(SwfRecord::unknown().effective_procs(), None);
    }

    #[test]
    fn effective_mem_takes_max_of_used_and_requested() {
        let mut r = SwfRecord::unknown();
        assert_eq!(r.effective_mem_kb(), None);
        r.used_mem_kb = 100.0;
        r.req_mem_kb = 300.0;
        assert_eq!(r.effective_mem_kb(), Some(300.0));
        r.req_mem_kb = -1.0;
        assert_eq!(r.effective_mem_kb(), Some(100.0));
    }

    #[test]
    fn empty_document_parses() {
        let (h, r) = parse_swf("").unwrap();
        assert!(h.is_empty() && r.is_empty());
    }
}
