//! The HPC2N workload: the paper's preprocessing rules plus a synthetic
//! stand-in generator.
//!
//! ## Preprocessing (Section IV-C, verbatim rules)
//!
//! The SWF format gives "processors", not tasks, so the paper infers:
//!
//! * per-processor memory = max(requested, used) as a fraction of the
//!   2 GB node memory, floored at the 10 % minimum observed; jobs with no
//!   memory information (~1 % of the trace) get 10 %;
//! * jobs with an **even** processor count and per-processor memory
//!   **< 50 %** are assumed multi-threaded: `tasks = procs / 2`, CPU need
//!   100 %, memory doubled;
//! * all other jobs: `tasks = procs`, CPU need 50 % (one of two cores).
//!
//! ## Synthetic stand-in (documented substitution)
//!
//! The real 182-week trace is not redistributable inside this repository,
//! so [`Hpc2nLikeGenerator`] synthesizes SWF records with the properties
//! the paper's analysis relies on — *"a large number of short-duration
//! serial jobs"* mixed with long parallel jobs — and pushes them through
//! the **same** preprocessing path a real file would take. When the real
//! `HPC2N-2002-2.2-cln.swf` is available, parse it with
//! [`crate::swf::parse_swf`] and call [`hpc2n_preprocess`] directly.

use rand::Rng;

use dfrs_core::ids::JobId;
use dfrs_core::{ClusterSpec, JobSpec};

use crate::swf::SwfRecord;
use crate::trace::Trace;

/// Memory floor: the minimum per-processor requirement observed in the
/// trace (10 % of node memory), also used for jobs with no memory data.
pub const HPC2N_MEM_FLOOR: f64 = 0.1;

/// Apply the paper's HPC2N rules to SWF records, producing a [`Trace`].
///
/// Records that cannot be scheduled at all are skipped: non-positive
/// runtime or processor count, or more inferred tasks than cluster nodes.
/// Submission times are re-based so the first job submits at 0.
pub fn hpc2n_preprocess(records: &[SwfRecord], cluster: ClusterSpec) -> Trace {
    let node_mem_kb = cluster.node_memory_gb * 1024.0 * 1024.0;
    let mut jobs = Vec::with_capacity(records.len());
    let t0 = records
        .iter()
        .filter(|r| r.submit >= 0.0)
        .map(|r| r.submit)
        .fold(f64::INFINITY, f64::min);
    let t0 = if t0.is_finite() { t0 } else { 0.0 };

    for rec in records {
        let Some(procs) = rec.effective_procs() else {
            continue;
        };
        if rec.runtime <= 0.0 || rec.submit < 0.0 {
            continue;
        }
        let per_proc_mem = rec
            .effective_mem_kb()
            .map(|kb| (kb / node_mem_kb).max(HPC2N_MEM_FLOOR))
            .unwrap_or(HPC2N_MEM_FLOOR)
            .min(1.0);

        let (tasks, cpu_need, mem_req) = if procs % 2 == 0 && per_proc_mem < 0.5 {
            (procs / 2, 1.0, (2.0 * per_proc_mem).min(1.0))
        } else {
            (procs, 1.0 / cluster.cores_per_node as f64, per_proc_mem)
        };
        if tasks == 0 || tasks > cluster.nodes {
            continue;
        }
        let id = JobId(jobs.len() as u32);
        if let Ok(job) = JobSpec::new(id, rec.submit - t0, tasks, cpu_need, mem_req, rec.runtime) {
            jobs.push(job);
        }
    }
    Trace::new(cluster, jobs).expect("preprocessed jobs are cluster-feasible by construction")
}

/// Synthesizer of HPC2N-like SWF records (see module docs).
///
/// Calibration targets, from the paper's description of the real trace:
/// ~1,100 jobs/week on 120 dual-core 2 GB nodes, a majority of
/// short-duration serial jobs (these depress the advantage of the
/// bin-packing schedulers and favor the greedy ones, Section V), a tail
/// of long parallel jobs, and the 55 % / 45 % memory split used
/// throughout the evaluation.
#[derive(Debug, Clone, Copy)]
pub struct Hpc2nLikeGenerator {
    /// Mean number of jobs per week (Poisson arrivals).
    pub jobs_per_week: f64,
    /// Probability that a job is serial (one processor).
    pub serial_prob: f64,
    /// Probability that a *serial* job is short (seconds to minutes).
    pub short_serial_prob: f64,
    /// Probability that a parallel job is short.
    pub short_parallel_prob: f64,
    /// The cluster (defaults to [`ClusterSpec::hpc2n`]).
    pub cluster: ClusterSpec,
}

impl Default for Hpc2nLikeGenerator {
    fn default() -> Self {
        Hpc2nLikeGenerator {
            jobs_per_week: 1_100.0,
            serial_prob: 0.70,
            short_serial_prob: 0.75,
            short_parallel_prob: 0.30,
            cluster: ClusterSpec::hpc2n(),
        }
    }
}

impl Hpc2nLikeGenerator {
    /// Generate `weeks` weeks of SWF records.
    pub fn generate_swf<R: Rng + ?Sized>(&self, weeks: u32, rng: &mut R) -> Vec<SwfRecord> {
        let mean_gap = crate::trace::WEEK_SECS / self.jobs_per_week;
        let horizon = weeks as f64 * crate::trace::WEEK_SECS;
        let mut records = Vec::new();
        let mut t = 0.0;
        let mut id = 1i64;
        loop {
            // Exponential gap: -mean · ln(U).
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -mean_gap * u.ln();
            if t >= horizon {
                break;
            }
            let serial = rng.gen_bool(self.serial_prob);
            let procs: i64 = if serial {
                1
            } else {
                // Power-of-two bias with occasional odd sizes, ≤ 240 procs.
                let base = 1i64 << rng.gen_range(1..=6i32);
                let procs = if rng.gen_bool(0.2) {
                    base * 3 / 2
                } else {
                    base
                };
                procs.min(2 * self.cluster.nodes as i64)
            };
            let short = rng.gen_bool(if serial {
                self.short_serial_prob
            } else {
                self.short_parallel_prob
            });
            let runtime = if short {
                // 1 s – ~4 min, log-uniform: the "fail at or soon after
                // launch" population.
                (rng.gen_range(0.0f64..8.0)).exp2()
            } else {
                // ~4 min – ~36 h, log-uniform.
                (rng.gen_range(8.0f64..17.0)).exp2()
            };
            // Memory: 55 % light (10 %), else 10·x % of the 2 GB node.
            let node_kb = self.cluster.node_memory_gb * 1024.0 * 1024.0;
            let frac = if rng.gen_bool(0.55) {
                0.1
            } else {
                0.1 * rng.gen_range(2..=10) as f64
            };
            // ~1 % of jobs miss memory info, as in the real trace.
            let mem_kb = if rng.gen_bool(0.01) {
                -1.0
            } else {
                frac * node_kb
            };

            let mut rec = SwfRecord::unknown();
            rec.job_id = id;
            rec.submit = t.floor();
            rec.wait = 0.0;
            rec.runtime = runtime.max(1.0).round();
            rec.used_procs = procs;
            rec.used_mem_kb = mem_kb;
            rec.req_procs = procs;
            rec.status = 1;
            records.push(rec);
            id += 1;
        }
        records
    }

    /// Generate `weeks` weeks and run them through the paper's
    /// preprocessing, returning one-week [`Trace`] segments.
    pub fn generate_weeks<R: Rng + ?Sized>(&self, weeks: u32, rng: &mut R) -> Vec<Trace> {
        let records = self.generate_swf(weeks, rng);
        hpc2n_preprocess(&records, self.cluster).split_weeks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rec(procs: i64, mem_kb: f64, runtime: f64) -> SwfRecord {
        let mut r = SwfRecord::unknown();
        r.submit = 0.0;
        r.runtime = runtime;
        r.used_procs = procs;
        r.used_mem_kb = mem_kb;
        r
    }

    const GB2_KB: f64 = 2.0 * 1024.0 * 1024.0;

    #[test]
    fn even_procs_light_memory_pairs_into_tasks() {
        // 4 processors, 20 % memory each → 2 multi-threaded tasks with
        // 100 % CPU need and 40 % memory.
        let t = hpc2n_preprocess(&[rec(4, 0.2 * GB2_KB, 100.0)], ClusterSpec::hpc2n());
        let j = &t.jobs()[0];
        assert_eq!(j.tasks, 2);
        assert_eq!(j.cpu_need, 1.0);
        assert!((j.mem_req - 0.4).abs() < 1e-12);
    }

    #[test]
    fn odd_procs_stay_single_core_tasks() {
        let t = hpc2n_preprocess(&[rec(3, 0.2 * GB2_KB, 100.0)], ClusterSpec::hpc2n());
        let j = &t.jobs()[0];
        assert_eq!(j.tasks, 3);
        assert!((j.cpu_need - 0.5).abs() < 1e-12);
        assert!((j.mem_req - 0.2).abs() < 1e-12);
    }

    #[test]
    fn heavy_memory_even_procs_not_paired() {
        // 60 % per-processor memory ≥ 50 % → one task per processor.
        let t = hpc2n_preprocess(&[rec(4, 0.6 * GB2_KB, 100.0)], ClusterSpec::hpc2n());
        let j = &t.jobs()[0];
        assert_eq!(j.tasks, 4);
        assert!((j.cpu_need - 0.5).abs() < 1e-12);
        assert!((j.mem_req - 0.6).abs() < 1e-12);
    }

    #[test]
    fn missing_memory_defaults_to_floor() {
        let t = hpc2n_preprocess(&[rec(5, -1.0, 100.0)], ClusterSpec::hpc2n());
        assert!((t.jobs()[0].mem_req - HPC2N_MEM_FLOOR).abs() < 1e-12);
    }

    #[test]
    fn memory_floor_applies_to_tiny_values() {
        let t = hpc2n_preprocess(&[rec(1, 1024.0, 100.0)], ClusterSpec::hpc2n());
        assert!((t.jobs()[0].mem_req - HPC2N_MEM_FLOOR).abs() < 1e-12);
    }

    #[test]
    fn unschedulable_records_are_skipped() {
        let recs = vec![
            rec(0, -1.0, 100.0),   // no processors
            rec(4, -1.0, 0.0),     // zero runtime
            rec(241, -1.0, 100.0), // 241 odd procs → 241 tasks > 120 nodes
        ];
        let t = hpc2n_preprocess(&recs, ClusterSpec::hpc2n());
        assert!(t.is_empty());
    }

    #[test]
    fn requested_memory_counts_when_larger() {
        let mut r = rec(2, 0.1 * GB2_KB, 50.0);
        r.req_mem_kb = 0.3 * GB2_KB;
        let t = hpc2n_preprocess(&[r], ClusterSpec::hpc2n());
        // even procs, 30 % < 50 % → paired, memory doubled to 60 %.
        assert_eq!(t.jobs()[0].tasks, 1);
        assert!((t.jobs()[0].mem_req - 0.6).abs() < 1e-12);
    }

    #[test]
    fn submissions_are_rebased_to_zero() {
        let mut a = rec(1, -1.0, 10.0);
        a.submit = 5_000.0;
        let mut b = rec(1, -1.0, 10.0);
        b.submit = 6_000.0;
        let t = hpc2n_preprocess(&[a, b], ClusterSpec::hpc2n());
        assert_eq!(t.jobs()[0].submit_time, 0.0);
        assert_eq!(t.jobs()[1].submit_time, 1_000.0);
    }

    #[test]
    fn generator_produces_expected_volume_and_mix() {
        let gen = Hpc2nLikeGenerator::default();
        let mut rng = SmallRng::seed_from_u64(17);
        let recs = gen.generate_swf(8, &mut rng);
        let per_week = recs.len() as f64 / 8.0;
        assert!((800.0..1400.0).contains(&per_week), "{per_week} jobs/week");
        let serial = recs.iter().filter(|r| r.used_procs == 1).count() as f64;
        let frac = serial / recs.len() as f64;
        assert!((frac - 0.70).abs() < 0.05, "serial fraction {frac}");
        // The signature property: lots of short serial jobs.
        let short_serial = recs
            .iter()
            .filter(|r| r.used_procs == 1 && r.runtime < 256.0)
            .count() as f64;
        assert!(short_serial / recs.len() as f64 > 0.3);
    }

    #[test]
    fn generator_weeks_round_trip_through_preprocessing() {
        let gen = Hpc2nLikeGenerator::default();
        let mut rng = SmallRng::seed_from_u64(23);
        let weeks = gen.generate_weeks(4, &mut rng);
        assert!(weeks.len() >= 3, "got {} segments", weeks.len());
        for w in &weeks {
            assert!(!w.is_empty());
            assert!(w.span() <= crate::trace::WEEK_SECS);
            for j in w.jobs() {
                assert!(j.tasks <= 120);
                assert!(j.mem_req >= HPC2N_MEM_FLOOR - 1e-12);
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = Hpc2nLikeGenerator::default();
        let a = gen.generate_swf(2, &mut SmallRng::seed_from_u64(5));
        let b = gen.generate_swf(2, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
