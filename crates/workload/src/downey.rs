//! The Downey (1997) synthetic workload model — a second, independently
//! published generator used here to check that the paper's conclusions
//! do not hinge on the Lublin model's particular shapes.
//!
//! Downey's "A parallel workload model and its implications for
//! processor allocation" models:
//!
//! * **sequential fraction + cluster sizes** — jobs request power-of-two
//!   "cluster sizes" with a log-uniform bias toward small requests;
//! * **total work** — log-uniform over several orders of magnitude
//!   (`L ~ 2^U(lo, hi)` node-seconds), with runtime = work / size;
//! * **Poisson arrivals** — exponential inter-arrival gaps.
//!
//! The annotation rules (CPU need, memory classes) stay the paper's, so
//! only the (arrival, size, runtime) joint distribution changes.

use rand::Rng;

use dfrs_core::ClusterSpec;

use crate::lublin::RawJob;

/// Parameters of the Downey-style generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowneyParams {
    /// Probability of a sequential (1-task) job.
    pub serial_prob: f64,
    /// log₂ of the smallest parallel size.
    pub size_log2_lo: f64,
    /// log₂ of the largest size (cluster size).
    pub size_log2_hi: f64,
    /// log₂ of the smallest total work (node-seconds).
    pub work_log2_lo: f64,
    /// log₂ of the largest total work.
    pub work_log2_hi: f64,
    /// Mean inter-arrival gap (seconds).
    pub mean_gap: f64,
    /// Runtime clamp (seconds).
    pub min_runtime: f64,
    /// Runtime clamp (seconds).
    pub max_runtime: f64,
}

impl DowneyParams {
    /// Defaults for an `n`-node cluster, calibrated like the Lublin
    /// defaults (1,000 jobs ≈ 4–6 days, moderate offered load).
    pub fn for_cluster(nodes: u32) -> Self {
        assert!(nodes >= 2);
        DowneyParams {
            serial_prob: 0.25,
            size_log2_lo: 1.0,
            size_log2_hi: (nodes as f64).log2(),
            work_log2_lo: 7.0,  // 128 node-seconds
            work_log2_hi: 19.0, // ~0.5 M node-seconds
            mean_gap: 430.0,
            min_runtime: 1.0,
            max_runtime: 65_536.0,
        }
    }
}

/// The generator.
#[derive(Debug, Clone, Copy)]
pub struct DowneyModel {
    params: DowneyParams,
}

impl DowneyModel {
    /// Build from parameters.
    pub fn new(params: DowneyParams) -> Self {
        DowneyModel { params }
    }

    /// Defaults for a cluster.
    pub fn for_cluster(cluster: &ClusterSpec) -> Self {
        DowneyModel::new(DowneyParams::for_cluster(cluster.nodes))
    }

    /// Model parameters.
    pub fn params(&self) -> &DowneyParams {
        &self.params
    }

    /// Draw a job size (power of two, log-uniform, serial with
    /// probability `serial_prob`).
    pub fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let p = &self.params;
        if rng.gen_bool(p.serial_prob) {
            return 1;
        }
        let u = rng.gen_range(p.size_log2_lo..=p.size_log2_hi);
        let size = u.round().exp2() as u32;
        size.clamp(2, p.size_log2_hi.exp2().round() as u32)
    }

    /// Draw a runtime for a given size: total work `2^U(lo,hi)` spread
    /// over the size.
    pub fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R, size: u32) -> f64 {
        let p = &self.params;
        let work = rng.gen_range(p.work_log2_lo..=p.work_log2_hi).exp2();
        (work / size as f64).clamp(p.min_runtime, p.max_runtime)
    }

    /// Generate `n` jobs with Poisson arrivals from time 0.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<RawJob> {
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0;
        for i in 0..n {
            if i > 0 {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -self.params.mean_gap * u.ln();
            }
            let tasks = self.sample_size(rng);
            let runtime = self.sample_runtime(rng, tasks);
            jobs.push(RawJob {
                submit: t,
                tasks,
                runtime,
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen(n: usize, seed: u64) -> Vec<RawJob> {
        DowneyModel::new(DowneyParams::for_cluster(128))
            .generate(n, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn sizes_are_powers_of_two_within_bounds() {
        for j in gen(5_000, 1) {
            assert!(
                j.tasks == 1 || j.tasks.is_power_of_two(),
                "size {}",
                j.tasks
            );
            assert!(j.tasks <= 128);
        }
    }

    #[test]
    fn serial_fraction_matches() {
        let jobs = gen(20_000, 2);
        let frac = jobs.iter().filter(|j| j.tasks == 1).count() as f64 / jobs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "serial {frac}");
    }

    #[test]
    fn work_spread_spans_orders_of_magnitude() {
        let jobs = gen(20_000, 3);
        let works: Vec<f64> = jobs.iter().map(|j| j.runtime * j.tasks as f64).collect();
        let min = works.iter().copied().fold(f64::INFINITY, f64::min);
        let max = works.iter().copied().fold(0.0, f64::max);
        assert!(max / min > 100.0, "work range too narrow: {min}..{max}");
    }

    #[test]
    fn bigger_jobs_run_shorter_for_equal_work() {
        // Runtime = work / size: at equal work distribution, mean runtime
        // decreases with size.
        let jobs = gen(40_000, 4);
        let mean_rt = |pred: &dyn Fn(&RawJob) -> bool| {
            let sel: Vec<f64> = jobs
                .iter()
                .filter(|j| pred(j))
                .map(|j| j.runtime.log2())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let small = mean_rt(&|j| j.tasks <= 2);
        let large = mean_rt(&|j| j.tasks >= 64);
        assert!(small > large + 1.0, "small {small} vs large {large}");
    }

    #[test]
    fn arrivals_are_poisson_like() {
        let jobs = gen(20_000, 5);
        let gaps: Vec<f64> = jobs.windows(2).map(|w| w[1].submit - w[0].submit).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 430.0).abs() / 430.0 < 0.05, "mean gap {mean}");
        // Exponential: std ≈ mean.
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(
            (var.sqrt() - mean).abs() / mean < 0.1,
            "std {} vs mean {mean}",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(300, 9), gen(300, 9));
    }

    #[test]
    fn thousand_jobs_span_days() {
        let jobs = gen(1_000, 10);
        let days = jobs.last().unwrap().submit / 86_400.0;
        assert!((2.0..9.0).contains(&days), "span {days} days");
    }
}
