//! Workload characterization: the summary statistics Section IV of the
//! paper reasons about (job-size mix, runtime distribution, memory
//! classes, CPU-need classes, offered load), computed from any trace.
//!
//! Used by tests to validate generators against their targets and by the
//! `workload_report` example to inspect a trace before simulating it.

use dfrs_core::{LogHistogram, OnlineStats};

use crate::trace::Trace;

/// Summary of one trace.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Number of jobs.
    pub jobs: usize,
    /// Fraction of one-task jobs.
    pub serial_fraction: f64,
    /// Fraction of parallel jobs whose size is a power of two.
    pub pow2_fraction: f64,
    /// Task-count statistics.
    pub tasks: OnlineStats,
    /// Runtime statistics (seconds).
    pub runtime: OnlineStats,
    /// Log-bucketed runtime distribution.
    pub runtime_hist: LogHistogram,
    /// Fraction of jobs with runtime under a minute.
    pub short_fraction: f64,
    /// Fraction of jobs with runtime over an hour.
    pub long_fraction: f64,
    /// Per-task memory statistics (fractions of node memory).
    pub mem: OnlineStats,
    /// Fraction of jobs in the light (10 %) memory class.
    pub light_mem_fraction: f64,
    /// Fraction of jobs with full (100 %) CPU need.
    pub cpu_bound_fraction: f64,
    /// Inter-arrival gap statistics (seconds).
    pub interarrival: OnlineStats,
    /// Offered load of the trace.
    pub offered_load: f64,
    /// Submission span (seconds).
    pub span: f64,
}

/// Compute the profile of a trace.
pub fn profile(trace: &Trace) -> WorkloadProfile {
    let jobs = trace.jobs();
    let n = jobs.len();
    let mut tasks = OnlineStats::new();
    let mut runtime = OnlineStats::new();
    let mut runtime_hist = LogHistogram::new(1.0, 10f64.powf(0.1), 60);
    let mut mem = OnlineStats::new();
    let mut interarrival = OnlineStats::new();
    let (mut serial, mut pow2, mut parallel) = (0usize, 0usize, 0usize);
    let (mut short, mut long, mut light, mut cpu_bound) = (0usize, 0usize, 0usize, 0usize);

    for (i, j) in jobs.iter().enumerate() {
        tasks.push(j.tasks as f64);
        runtime.push(j.oracle_runtime());
        runtime_hist.push(j.oracle_runtime());
        mem.push(j.mem_req);
        if j.tasks == 1 {
            serial += 1;
        } else {
            parallel += 1;
            if j.tasks.is_power_of_two() {
                pow2 += 1;
            }
        }
        if j.oracle_runtime() < 60.0 {
            short += 1;
        }
        if j.oracle_runtime() > 3600.0 {
            long += 1;
        }
        if (j.mem_req - 0.1).abs() < 1e-9 {
            light += 1;
        }
        if (j.cpu_need - 1.0).abs() < 1e-9 {
            cpu_bound += 1;
        }
        if i > 0 {
            interarrival.push(j.submit_time - jobs[i - 1].submit_time);
        }
    }

    let frac = |k: usize| if n > 0 { k as f64 / n as f64 } else { 0.0 };
    WorkloadProfile {
        jobs: n,
        serial_fraction: frac(serial),
        pow2_fraction: if parallel > 0 {
            pow2 as f64 / parallel as f64
        } else {
            0.0
        },
        tasks,
        runtime,
        runtime_hist,
        short_fraction: frac(short),
        long_fraction: frac(long),
        mem,
        light_mem_fraction: frac(light),
        cpu_bound_fraction: frac(cpu_bound),
        interarrival,
        offered_load: trace.offered_load(),
        span: trace.span(),
    }
}

impl WorkloadProfile {
    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("jobs:            {}\n", self.jobs));
        s.push_str(&format!(
            "span:            {:.1} h   offered load: {:.3}\n",
            self.span / 3600.0,
            self.offered_load
        ));
        s.push_str(&format!(
            "sizes:           serial {:.1}%, pow2-parallel {:.1}%, mean {:.1}, max {:.0}\n",
            100.0 * self.serial_fraction,
            100.0 * self.pow2_fraction,
            self.tasks.mean(),
            self.tasks.max()
        ));
        s.push_str(&format!(
            "runtimes:        mean {:.0} s, median ≈{:.0} s, p95 ≈{:.0} s, <1min {:.1}%, >1h {:.1}%\n",
            self.runtime.mean(),
            self.runtime_hist.quantile(0.5),
            self.runtime_hist.quantile(0.95),
            100.0 * self.short_fraction,
            100.0 * self.long_fraction
        ));
        s.push_str(&format!(
            "memory/task:     mean {:.2}, light(10%) class {:.1}%\n",
            self.mem.mean(),
            100.0 * self.light_mem_fraction
        ));
        s.push_str(&format!(
            "cpu needs:       100%-bound {:.1}%\n",
            100.0 * self.cpu_bound_fraction
        ));
        s.push_str(&format!(
            "inter-arrivals:  mean {:.0} s, max {:.0} s\n",
            self.interarrival.mean(),
            self.interarrival.max()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Annotator;
    use crate::lublin::LublinModel;
    use dfrs_core::ClusterSpec;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lublin_trace(n: usize, seed: u64) -> Trace {
        let cluster = ClusterSpec::synthetic();
        let model = LublinModel::for_cluster(&cluster);
        let mut rng = SmallRng::seed_from_u64(seed);
        let raws = model.generate(n, &mut rng);
        let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
        Trace::new(cluster, jobs).unwrap()
    }

    #[test]
    fn lublin_profile_matches_model_targets() {
        let p = profile(&lublin_trace(10_000, 1));
        assert!(
            (p.serial_fraction - 0.244).abs() < 0.03,
            "serial {}",
            p.serial_fraction
        );
        assert!(p.pow2_fraction > 0.5);
        assert!((p.light_mem_fraction - 0.55).abs() < 0.03);
        // Sequential tasks (24.4 %) have need 0.25; rest are CPU-bound.
        assert!((p.cpu_bound_fraction - (1.0 - p.serial_fraction)).abs() < 1e-9);
        assert!(p.offered_load > 0.0);
    }

    #[test]
    fn render_contains_key_lines() {
        let p = profile(&lublin_trace(200, 2));
        let text = p.render();
        assert!(text.contains("offered load"));
        assert!(text.contains("serial"));
        assert!(text.contains("inter-arrivals"));
    }

    #[test]
    fn empty_trace_profile_is_zeroed() {
        let t = Trace::new(ClusterSpec::synthetic(), vec![]).unwrap();
        let p = profile(&t);
        assert_eq!(p.jobs, 0);
        assert_eq!(p.serial_fraction, 0.0);
        assert_eq!(p.offered_load, 0.0);
    }

    #[test]
    fn hpc2n_like_profile_has_short_serial_signature() {
        use crate::hpc2n::Hpc2nLikeGenerator;
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = Hpc2nLikeGenerator::default();
        let weeks = gen.generate_weeks(2, &mut rng);
        let p = profile(&weeks[0]);
        assert!(p.serial_fraction > 0.5, "serial {}", p.serial_fraction);
        assert!(p.short_fraction > 0.3, "short {}", p.short_fraction);
    }
}
