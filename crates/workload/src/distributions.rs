//! Random-variate samplers needed by the workload models.
//!
//! `rand_distr` is not in the approved dependency set, so the gamma
//! sampler (Marsaglia–Tsang squeeze method, with the Johnk boost for
//! shape < 1) and the derived hyper-gamma and two-stage-uniform
//! distributions are implemented here. All samplers take the RNG by
//! mutable reference so callers control seeding and stream splitting.

use rand::Rng;

/// Gamma distribution with `shape` k and `scale` θ (mean `k·θ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape parameter k > 0.
    pub shape: f64,
    /// Scale parameter θ > 0.
    pub scale: f64,
}

impl Gamma {
    /// Construct, panicking on non-positive parameters (these are
    /// programmer-supplied model constants, not runtime data).
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "gamma shape must be positive"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "gamma scale must be positive"
        );
        Gamma { shape, scale }
    }

    /// Distribution mean `k·θ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Distribution variance `k·θ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draw one variate.
    ///
    /// Marsaglia & Tsang (2000): for k ≥ 1, squeeze-accept on
    /// `d·(1 + x/√(9d))³` with `d = k − 1/3`; for k < 1 use the boost
    /// `Gamma(k) = Gamma(k+1) · U^(1/k)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Johnk boost.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: 1.0,
            }
            .sample(rng);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            return boosted * u.powf(1.0 / self.shape) * self.scale;
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller (avoids a dependency on
            // rand_distr's ziggurat).
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            // Squeeze, then full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * self.scale;
            }
        }
    }
}

/// Mixture of two gammas: with probability `p` draw from `first`,
/// otherwise from `second`. The Lublin model represents (log₂ of) job
/// runtimes this way, with `p` a linear function of the job size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperGamma {
    /// First component (short jobs in the runtime model).
    pub first: Gamma,
    /// Second component (long jobs).
    pub second: Gamma,
    /// Probability of the first component, in `[0, 1]`.
    pub p: f64,
}

impl HyperGamma {
    /// Construct; `p` is clamped into `[0, 1]`.
    pub fn new(first: Gamma, second: Gamma, p: f64) -> Self {
        HyperGamma {
            first,
            second,
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Mixture mean.
    pub fn mean(&self) -> f64 {
        self.p * self.first.mean() + (1.0 - self.p) * self.second.mean()
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen_bool(self.p) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }
}

/// Lublin's two-stage uniform: with probability `prob`, uniform on
/// `[low, med]`; otherwise uniform on `[med, high]`. Applied to log₂ of
/// parallel job sizes it produces the observed bias toward small jobs
/// with a tail up to the machine size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStageUniform {
    /// Lower bound of the first stage.
    pub low: f64,
    /// Boundary between the stages.
    pub med: f64,
    /// Upper bound of the second stage.
    pub high: f64,
    /// Probability of the first stage.
    pub prob: f64,
}

impl TwoStageUniform {
    /// Construct, panicking unless `low ≤ med ≤ high` and `prob ∈ [0,1]`.
    pub fn new(low: f64, med: f64, high: f64, prob: f64) -> Self {
        assert!(
            low <= med && med <= high,
            "two-stage bounds must be ordered"
        );
        assert!((0.0..=1.0).contains(&prob));
        TwoStageUniform {
            low,
            med,
            high,
            prob,
        }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.prob * 0.5 * (self.low + self.med) + (1.0 - self.prob) * 0.5 * (self.med + self.high)
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (a, b) = if rng.gen_bool(self.prob) {
            (self.low, self.med)
        } else {
            (self.med, self.high)
        };
        if a == b {
            a
        } else {
            rng.gen_range(a..b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_stats(mut f: impl FnMut(&mut SmallRng) -> f64, n: usize) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(0xD0F5);
        let xs: Vec<f64> = (0..n).map(|_| f(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn gamma_moments_match_theory_shape_above_one() {
        let g = Gamma::new(4.2, 0.94);
        let (mean, var) = sample_stats(|r| g.sample(r), 200_000);
        assert!(
            (mean - g.mean()).abs() / g.mean() < 0.02,
            "mean {mean} vs {}",
            g.mean()
        );
        assert!(
            (var - g.variance()).abs() / g.variance() < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn gamma_moments_match_theory_shape_below_one() {
        let g = Gamma::new(0.45, 2.0);
        let (mean, var) = sample_stats(|r| g.sample(r), 300_000);
        assert!(
            (mean - g.mean()).abs() / g.mean() < 0.03,
            "mean {mean} vs {}",
            g.mean()
        );
        assert!(
            (var - g.variance()).abs() / g.variance() < 0.08,
            "var {var}"
        );
    }

    #[test]
    fn gamma_is_always_positive() {
        let g = Gamma::new(0.3, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_bad_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    fn hypergamma_mean_interpolates() {
        let h = HyperGamma::new(Gamma::new(2.0, 1.0), Gamma::new(10.0, 2.0), 0.3);
        let (mean, _) = sample_stats(|r| h.sample(r), 200_000);
        assert!(
            (mean - h.mean()).abs() / h.mean() < 0.02,
            "mean {mean} vs {}",
            h.mean()
        );
    }

    #[test]
    fn hypergamma_extremes_degenerate_to_components() {
        let first = Gamma::new(2.0, 1.0);
        let second = Gamma::new(50.0, 1.0);
        let all_first = HyperGamma::new(first, second, 1.0);
        let (mean, _) = sample_stats(|r| all_first.sample(r), 50_000);
        assert!((mean - first.mean()).abs() / first.mean() < 0.03);
    }

    #[test]
    fn two_stage_uniform_respects_bounds_and_mean() {
        let t = TwoStageUniform::new(0.8, 4.5, 7.0, 0.86);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        let n = 200_000;
        for _ in 0..n {
            let x = t.sample(&mut rng);
            assert!((0.8..=7.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - t.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            t.mean()
        );
    }

    #[test]
    fn two_stage_uniform_degenerate_interval() {
        let t = TwoStageUniform::new(3.0, 3.0, 3.0, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 3.0);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let g = Gamma::new(4.2, 0.94);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut a), g.sample(&mut b));
        }
    }
}
