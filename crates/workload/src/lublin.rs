//! The Lublin–Feitelson synthetic workload model (JPDC 2003), as used in
//! Section IV-C of the paper.
//!
//! The model generates *rigid* jobs: an arrival time, a size (number of
//! tasks) and a runtime. Structure, following the published model:
//!
//! * **Size** — a job is serial with probability `serial_prob`; parallel
//!   sizes are `2^u` with `u` drawn from a two-stage uniform on
//!   `[log₂ 2, log₂ N]`, and with probability `pow2_prob` the exponent is
//!   rounded to an integer (the observed excess of power-of-two sizes).
//! * **Runtime** — `2^x` seconds with `x` hyper-gamma; the probability of
//!   the *short* component is linear in the job size
//!   (`p = pa·size + pb`), producing the observed correlation between
//!   size and runtime.
//! * **Arrivals** — inter-arrival gaps are `2^x` seconds with `x` gamma,
//!   times a calibration constant.
//!
//! ### Calibration note (documented substitution)
//!
//! The published model was fit per-system and includes a daily-cycle
//! component; the paper's evaluation *rescales inter-arrival gaps anyway*
//! to reach offered loads 0.1–0.9, so only the distributional shapes
//! matter here. The default parameters below keep the published shape
//! constants where they are unambiguous (size model, short-runtime gamma,
//! linear mixing) and calibrate the rest so that — as stated in the paper
//! — 1,000-job traces for a 128-node cluster span roughly 4–6 days and
//! contain a realistic mix of second-scale and multi-hour jobs.

use rand::Rng;

use dfrs_core::ClusterSpec;

use crate::distributions::{Gamma, TwoStageUniform};

/// A generated job before CPU/memory annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawJob {
    /// Submission time (seconds from trace start).
    pub submit: f64,
    /// Number of tasks (1 ..= cluster size).
    pub tasks: u32,
    /// Dedicated-mode runtime in seconds.
    pub runtime: f64,
}

/// Daily arrival cycle: relative arrival-rate weight per hour of day.
/// The published model observes strong day/night rhythm (arrivals peak
/// in working hours, trough at night); gaps are stretched by the inverse
/// of the weight at the current simulated hour. Weights are normalized
/// to mean 1 so the cycle does not change the average rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyCycle {
    /// Relative weight for each hour 0–23.
    pub hourly_weights: [f64; 24],
}

impl DailyCycle {
    /// A smooth day/night rhythm fit to the shape reported by Lublin &
    /// Feitelson: trough around 4–5 am (≈ 0.35×), peak in the early
    /// afternoon (≈ 1.7×).
    pub fn lublin_like() -> Self {
        let mut w = [0.0f64; 24];
        for (h, slot) in w.iter_mut().enumerate() {
            // Cosine bump centered at 14:00 with night floor.
            let phase = (h as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
            *slot = (1.0 + 0.68 * phase.cos()).max(0.3);
        }
        let mean = w.iter().sum::<f64>() / 24.0;
        for slot in &mut w {
            *slot /= mean;
        }
        DailyCycle { hourly_weights: w }
    }

    /// The (normalized) weight at an absolute time.
    pub fn weight_at(&self, t: f64) -> f64 {
        let hour = ((t / 3600.0).rem_euclid(24.0)) as usize;
        self.hourly_weights[hour.min(23)]
    }
}

/// Parameters of the model. `Default` targets the paper's 128-node
/// synthetic setting; use [`LublinParams::for_cluster`] for other sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LublinParams {
    /// Probability that a job is serial (one task).
    pub serial_prob: f64,
    /// Probability that a parallel size is a power of two.
    pub pow2_prob: f64,
    /// Two-stage uniform over log₂(size) for parallel jobs.
    pub size_log2: TwoStageUniform,
    /// Gamma over log₂(runtime) — short component.
    pub runtime_short_log2: Gamma,
    /// Gamma over log₂(runtime) — long component.
    pub runtime_long_log2: Gamma,
    /// Linear mixing: `P(short) = pa·size + pb`, clamped to `[0, 1]`.
    pub runtime_pa: f64,
    /// See `runtime_pa`.
    pub runtime_pb: f64,
    /// Runtime clamp (seconds).
    pub min_runtime: f64,
    /// Runtime clamp (seconds).
    pub max_runtime: f64,
    /// Gamma over log₂(inter-arrival gap in seconds).
    pub arrival_log2: Gamma,
    /// Multiplier applied to every gap (span calibration).
    pub arrival_scale: f64,
    /// Optional day/night arrival modulation.
    pub daily_cycle: Option<DailyCycle>,
    /// Largest job size (cluster node count).
    pub max_size: u32,
}

impl LublinParams {
    /// Defaults for an `n`-node cluster.
    pub fn for_cluster(nodes: u32) -> Self {
        assert!(nodes >= 2, "the model needs at least 2 nodes");
        let uhi = (nodes as f64).log2();
        let umed = (uhi - 2.5).max(1.0);
        LublinParams {
            serial_prob: 0.244,
            pow2_prob: 0.576,
            size_log2: TwoStageUniform::new(0.8f64.min(umed), umed, uhi, 0.86),
            runtime_short_log2: Gamma::new(4.2, 0.94),
            // Mean log₂ ≈ 12.2 (median ≈ 1.3 h, mean ≈ 3 h, tail capped
            // at 18.2 h): calibrated so a 1,000-job unscaled trace lands
            // at a realistic offered load (~0.5–0.7) on 128 nodes while
            // spanning 4–6 days, as the paper describes.
            runtime_long_log2: Gamma::new(51.0, 0.24),
            runtime_pa: -0.0054,
            runtime_pb: 0.78,
            min_runtime: 1.0,
            max_runtime: 65_536.0, // 2^16 s ≈ 18.2 h
            arrival_log2: Gamma::new(10.23, 0.4871),
            arrival_scale: 5.8,
            daily_cycle: None,
            max_size: nodes,
        }
    }

    /// The same defaults with the day/night arrival rhythm enabled.
    pub fn for_cluster_with_daily_cycle(nodes: u32) -> Self {
        LublinParams {
            daily_cycle: Some(DailyCycle::lublin_like()),
            ..Self::for_cluster(nodes)
        }
    }
}

impl Default for LublinParams {
    fn default() -> Self {
        LublinParams::for_cluster(dfrs_core::constants::SYNTHETIC_CLUSTER_NODES)
    }
}

/// The generator: owns parameters, draws jobs from a caller-provided RNG.
#[derive(Debug, Clone, Copy)]
pub struct LublinModel {
    params: LublinParams,
}

impl LublinModel {
    /// Build from parameters.
    pub fn new(params: LublinParams) -> Self {
        LublinModel { params }
    }

    /// Defaults for the given cluster.
    pub fn for_cluster(cluster: &ClusterSpec) -> Self {
        LublinModel::new(LublinParams::for_cluster(cluster.nodes))
    }

    /// Model parameters.
    pub fn params(&self) -> &LublinParams {
        &self.params
    }

    /// Draw one job size.
    pub fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let p = &self.params;
        if rng.gen_bool(p.serial_prob) {
            return 1;
        }
        let mut u = p.size_log2.sample(rng);
        if rng.gen_bool(p.pow2_prob) {
            u = u.round();
        }
        let size = u.exp2().round() as u32;
        size.clamp(2, p.max_size)
    }

    /// Draw one runtime (seconds) for a job of the given size.
    pub fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R, size: u32) -> f64 {
        let p = &self.params;
        let p_short = (p.runtime_pa * size as f64 + p.runtime_pb).clamp(0.0, 1.0);
        let log2_rt = if rng.gen_bool(p_short) {
            p.runtime_short_log2.sample(rng)
        } else {
            p.runtime_long_log2.sample(rng)
        };
        log2_rt.exp2().clamp(p.min_runtime, p.max_runtime)
    }

    /// Draw one inter-arrival gap (seconds).
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.params.arrival_scale * self.params.arrival_log2.sample(rng).exp2()
    }

    /// Generate `n` jobs with submit times starting at 0.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<RawJob> {
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0;
        for i in 0..n {
            if i > 0 {
                let mut gap = self.sample_gap(rng);
                if let Some(cycle) = &self.params.daily_cycle {
                    // Stretch the gap by the inverse arrival weight at
                    // the current hour (time-rescaling approximation).
                    gap /= cycle.weight_at(t);
                }
                t += gap;
            }
            let tasks = self.sample_size(rng);
            let runtime = self.sample_runtime(rng, tasks);
            jobs.push(RawJob {
                submit: t,
                tasks,
                runtime,
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> LublinModel {
        LublinModel::new(LublinParams::default())
    }

    fn gen(n: usize, seed: u64) -> Vec<RawJob> {
        model().generate(n, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn sizes_are_within_cluster_bounds() {
        for j in gen(5_000, 1) {
            assert!(j.tasks >= 1 && j.tasks <= 128, "size {}", j.tasks);
        }
    }

    #[test]
    fn serial_fraction_matches_parameter() {
        let jobs = gen(20_000, 2);
        let serial = jobs.iter().filter(|j| j.tasks == 1).count() as f64;
        let frac = serial / jobs.len() as f64;
        assert!((frac - 0.244).abs() < 0.02, "serial fraction {frac}");
    }

    #[test]
    fn powers_of_two_are_overrepresented() {
        let jobs = gen(20_000, 3);
        let parallel: Vec<_> = jobs.iter().filter(|j| j.tasks > 1).collect();
        let pow2 = parallel
            .iter()
            .filter(|j| j.tasks.is_power_of_two())
            .count() as f64;
        let frac = pow2 / parallel.len() as f64;
        // Rounding the exponent hits a power of two with prob pow2_prob
        // plus boundary effects from the continuous branch.
        assert!(frac > 0.5, "power-of-two fraction {frac}");
    }

    #[test]
    fn runtimes_respect_clamps() {
        for j in gen(20_000, 4) {
            assert!(
                j.runtime >= 1.0 && j.runtime <= 65_536.0,
                "runtime {}",
                j.runtime
            );
        }
    }

    #[test]
    fn bigger_jobs_run_longer_on_average() {
        // The linear mixing makes large jobs more likely to draw the long
        // gamma: compare mean log-runtimes of small vs large jobs.
        let jobs = gen(40_000, 5);
        let (mut small, mut ns, mut large, mut nl) = (0.0, 0, 0.0, 0);
        for j in &jobs {
            if j.tasks <= 2 {
                small += j.runtime.log2();
                ns += 1;
            } else if j.tasks >= 64 {
                large += j.runtime.log2();
                nl += 1;
            }
        }
        assert!(ns > 100 && nl > 100, "not enough samples in size buckets");
        assert!(
            large / nl as f64 > small / ns as f64 + 0.5,
            "no size-runtime correlation"
        );
    }

    #[test]
    fn submissions_are_nondecreasing_from_zero() {
        let jobs = gen(2_000, 6);
        assert_eq!(jobs[0].submit, 0.0);
        for w in jobs.windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
    }

    #[test]
    fn thousand_job_trace_spans_days() {
        // The paper: "the time between the submission of the first job and
        // the submission of the last job is on the order of 4-6 days".
        // Allow a generous band (2–10 days) across seeds.
        for seed in 0..5 {
            let jobs = gen(1_000, 100 + seed);
            let span = jobs.last().unwrap().submit;
            let days = span / 86_400.0;
            assert!(
                (2.0..10.0).contains(&days),
                "span {days} days (seed {seed})"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen(500, 9), gen(500, 9));
    }

    #[test]
    fn runtime_mix_contains_short_and_long_jobs() {
        let jobs = gen(20_000, 10);
        let short = jobs.iter().filter(|j| j.runtime < 60.0).count();
        let long = jobs.iter().filter(|j| j.runtime > 3_600.0).count();
        assert!(short > jobs.len() / 10, "too few short jobs: {short}");
        assert!(long > jobs.len() / 10, "too few multi-hour jobs: {long}");
    }

    #[test]
    fn for_cluster_adapts_size_bounds() {
        let m = LublinModel::new(LublinParams::for_cluster(32));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..5_000 {
            assert!(m.sample_size(&mut rng) <= 32);
        }
    }
}

#[cfg(test)]
mod daily_cycle_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_normalized_and_positive() {
        let c = DailyCycle::lublin_like();
        let mean: f64 = c.hourly_weights.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(c.hourly_weights.iter().all(|&w| w > 0.0));
        // Peak in the afternoon, trough at night.
        assert!(c.weight_at(14.0 * 3600.0) > 1.4);
        assert!(c.weight_at(3.0 * 3600.0) < 0.6);
        // Wraps across days.
        assert_eq!(
            c.weight_at(14.0 * 3600.0),
            c.weight_at((24.0 + 14.0) * 3600.0)
        );
    }

    #[test]
    fn cycle_concentrates_arrivals_in_daytime() {
        let params = LublinParams::for_cluster_with_daily_cycle(128);
        let model = LublinModel::new(params);
        let mut rng = SmallRng::seed_from_u64(9);
        let jobs = model.generate(20_000, &mut rng);
        let (mut day, mut night) = (0usize, 0usize);
        for j in &jobs {
            let hour = (j.submit / 3600.0).rem_euclid(24.0);
            if (9.0..18.0).contains(&hour) {
                day += 1;
            } else if !(6.0..21.0).contains(&hour) {
                night += 1;
            }
        }
        // 9 working hours vs 9 night hours: day wins decisively.
        assert!(
            day as f64 > 1.5 * night as f64,
            "day {day} vs night {night} arrivals"
        );
    }

    #[test]
    fn cycle_preserves_overall_span_roughly() {
        let flat = LublinModel::new(LublinParams::for_cluster(128));
        let cyc = LublinModel::new(LublinParams::for_cluster_with_daily_cycle(128));
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        let span_flat = flat.generate(2_000, &mut r1).last().unwrap().submit;
        let span_cyc = cyc.generate(2_000, &mut r2).last().unwrap().submit;
        let ratio = span_cyc / span_flat;
        assert!((0.5..2.0).contains(&ratio), "span ratio {ratio}");
    }
}
