//! Property-based tests: workload pipeline invariants.

use dfrs_core::ids::JobId;
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_workload::lublin::{LublinModel, LublinParams};
use dfrs_workload::swf::{parse_swf, write_swf, SwfRecord};
use dfrs_workload::{Annotator, Trace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            0.0f64..1e6,
            1u32..16,
            0.05f64..=1.0,
            0.05f64..=1.0,
            1.0f64..1e5,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, tasks, cpu, mem, rt))| {
                JobSpec::new(JobId(i as u32), submit, tasks, cpu, mem, rt).unwrap()
            })
            .collect()
    })
}

proptest! {
    /// Rescaling to any target load actually achieves it, and scaling is
    /// work-preserving.
    #[test]
    fn scale_to_load_is_exact(jobs in arb_jobs(40), target in 0.05f64..2.0) {
        let cluster = ClusterSpec::new(16, 4, 8.0).unwrap();
        let t = Trace::new(cluster, jobs).unwrap();
        prop_assume!(t.span() > 0.0);
        let s = t.scale_to_load(target).unwrap();
        prop_assert!((s.offered_load() - target).abs() < 1e-6);
        prop_assert!((s.total_node_seconds() - t.total_node_seconds()).abs() < 1e-6);
        prop_assert_eq!(s.len(), t.len());
    }

    /// Splitting into windows partitions the jobs and preserves per-job
    /// fields other than (re-based) submit times.
    #[test]
    fn split_windows_partitions(jobs in arb_jobs(60), window in 1_000.0f64..100_000.0) {
        let cluster = ClusterSpec::new(16, 4, 8.0).unwrap();
        let t = Trace::new(cluster, jobs).unwrap();
        let parts = t.split_windows(window);
        let total: usize = parts.iter().map(Trace::len).sum();
        prop_assert_eq!(total, t.len());
        for p in &parts {
            for j in p.jobs() {
                prop_assert!(j.submit_time >= 0.0 && j.submit_time < window + 1e-9);
            }
        }
        let mut work = 0.0;
        for p in &parts { work += p.total_node_seconds(); }
        prop_assert!((work - t.total_node_seconds()).abs() < 1e-6);
    }

    /// The Lublin model generates schedulable jobs for any cluster size.
    #[test]
    fn lublin_jobs_fit_their_cluster(nodes in 2u32..512, seed in 0u64..1_000) {
        let model = LublinModel::new(LublinParams::for_cluster(nodes));
        let mut rng = SmallRng::seed_from_u64(seed);
        for j in model.generate(100, &mut rng) {
            prop_assert!(j.tasks >= 1 && j.tasks <= nodes);
            prop_assert!(j.runtime > 0.0);
            prop_assert!(j.submit >= 0.0);
        }
    }

    /// Annotated Lublin traces build valid Trace values.
    #[test]
    fn lublin_annotation_pipeline_is_valid(seed in 0u64..500) {
        let cluster = ClusterSpec::synthetic();
        let model = LublinModel::for_cluster(&cluster);
        let mut rng = SmallRng::seed_from_u64(seed);
        let raws = model.generate(80, &mut rng);
        let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
        let t = Trace::new(cluster, jobs).unwrap();
        prop_assert_eq!(t.len(), 80);
        for j in t.jobs() {
            prop_assert!(j.cpu_need == 1.0 || (j.cpu_need - 0.25).abs() < 1e-12);
            prop_assert!(j.mem_req >= 0.1 - 1e-12 && j.mem_req <= 1.0 + 1e-12);
        }
    }

    /// SWF writing then parsing is the identity on records.
    #[test]
    fn swf_round_trip(
        recs in prop::collection::vec(
            (1i64..10_000, 0.0f64..1e7, 0.0f64..1e5, 1.0f64..1e5, 1i64..256, 0.0f64..1e6),
            0..30,
        )
    ) {
        let records: Vec<SwfRecord> = recs
            .into_iter()
            .map(|(id, submit, wait, rt, procs, mem)| {
                let mut r = SwfRecord::unknown();
                r.job_id = id;
                r.submit = submit.floor();
                r.wait = wait.floor();
                r.runtime = rt.floor().max(1.0);
                r.used_procs = procs;
                r.used_mem_kb = mem.floor();
                r
            })
            .collect();
        let text = write_swf(&Vec::new(), &records);
        let (_, parsed) = parse_swf(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }
}
