//! Figure 1 — average stretch-degradation factor vs offered load, for
//! all nine algorithms, without (a) and with (b) the 5-minute
//! rescheduling penalty.

use dfrs_core::OnlineStats;
use dfrs_scenario::{degradation_row, Campaign};
use dfrs_sched::SchedulerSpec;

use crate::instances::scaled_instances;
use crate::report::TextTable;

/// One figure's data: per load level, per scheduler spec, the average
/// degradation factor over the instances at that load.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Load grid (x axis).
    pub loads: Vec<f64>,
    /// Scheduler specs (series), Table I order by default.
    pub specs: Vec<SchedulerSpec>,
    /// Display names aligned with `specs`.
    pub names: Vec<String>,
    /// `series[l][a]` = average degradation at `loads[l]` for
    /// `specs[a]`.
    pub series: Vec<Vec<f64>>,
}

/// Run the experiment over arbitrary scheduler specs.
pub fn run_specs(
    seeds: u64,
    jobs: usize,
    loads: &[f64],
    specs: Vec<SchedulerSpec>,
    penalty: f64,
    seed0: u64,
    threads: usize,
) -> Fig1Data {
    let mut series = Vec::with_capacity(loads.len());
    let mut names: Vec<String> = specs.iter().map(|s| s.to_string()).collect();
    for &load in loads {
        // One load at a time keeps the memory footprint flat and lets
        // the degradation baseline stay per-instance, as in the paper.
        let instances = scaled_instances(seeds, jobs, &[load], seed0);
        let result = Campaign::from_specs(&instances, specs.clone())
            .penalty(penalty)
            .threads(threads)
            .run();
        let mut stats = vec![OnlineStats::new(); specs.len()];
        for row in &result.cells {
            for (a, d) in degradation_row(row).into_iter().enumerate() {
                stats[a].push(d);
            }
        }
        if let Some(row) = result.cells.first() {
            names = row.iter().map(|c| c.name.clone()).collect();
        }
        series.push(stats.iter().map(OnlineStats::mean).collect());
    }
    Fig1Data {
        loads: loads.to_vec(),
        specs,
        names,
        series,
    }
}

/// Run the experiment over the paper's nine algorithms.
pub fn run(
    seeds: u64,
    jobs: usize,
    loads: &[f64],
    penalty: f64,
    seed0: u64,
    threads: usize,
) -> Fig1Data {
    let specs = dfrs_sched::Algorithm::ALL
        .iter()
        .map(|a| a.spec())
        .collect();
    run_specs(seeds, jobs, loads, specs, penalty, seed0, threads)
}

impl Fig1Data {
    /// The figure as a table: rows = loads, columns = schedulers.
    pub fn table(&self) -> TextTable {
        let mut header = vec!["load".to_string()];
        header.extend(self.names.iter().cloned());
        let mut t = TextTable::new(header);
        for (l, row) in self.loads.iter().zip(self.series.iter()) {
            let mut cells = vec![format!("{l:.1}")];
            cells.extend(row.iter().map(|d| format!("{d:.2}")));
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_inputs() {
        let data = run(2, 30, &[0.3, 0.6], 0.0, 3, 4);
        assert_eq!(data.loads, vec![0.3, 0.6]);
        assert_eq!(data.series.len(), 2);
        assert_eq!(data.series[0].len(), 9);
        // Degradations are ≥ 1 and at least one algorithm is near-best on
        // average... (≥ 1 for all).
        for row in &data.series {
            for &d in row {
                assert!(d >= 1.0);
            }
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let data = run(1, 25, &[0.5], 0.0, 7, 2);
        let text = data.table().render();
        assert!(text.contains("FCFS"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn custom_specs_run_from_strings() {
        let specs = ["greedy-pmtn", "dynmcb8-per:t=300"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let data = run_specs(1, 25, &[0.5], specs, 300.0, 9, 2);
        assert_eq!(data.series[0].len(), 2);
        assert!(data.table().render().contains("DynMCB8-per 300"));
    }
}
