//! Figure 1 — average stretch-degradation factor vs offered load, for
//! all nine algorithms, without (a) and with (b) the 5-minute
//! rescheduling penalty.

use dfrs_core::OnlineStats;
use dfrs_sched::Algorithm;

use crate::instances::scaled_instances;
use crate::report::TextTable;
use crate::runner::{degradation_row, run_matrix};

/// One figure's data: per load level, per algorithm, the average
/// degradation factor over the instances at that load.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Load grid (x axis).
    pub loads: Vec<f64>,
    /// Algorithms (series), Table I order.
    pub algorithms: Vec<Algorithm>,
    /// `series[l][a]` = average degradation at `loads[l]` for
    /// `algorithms[a]`.
    pub series: Vec<Vec<f64>>,
}

/// Run the experiment.
pub fn run(
    seeds: u64,
    jobs: usize,
    loads: &[f64],
    penalty: f64,
    seed0: u64,
    threads: usize,
) -> Fig1Data {
    let algorithms = Algorithm::ALL.to_vec();
    let mut series = Vec::with_capacity(loads.len());
    for &load in loads {
        // One load at a time keeps the memory footprint flat and lets
        // the degradation baseline stay per-instance, as in the paper.
        let instances = scaled_instances(seeds, jobs, &[load], seed0);
        let results = run_matrix(&instances, &algorithms, penalty, threads);
        let mut stats = vec![OnlineStats::new(); algorithms.len()];
        for row in &results {
            for (a, d) in degradation_row(row).into_iter().enumerate() {
                stats[a].push(d);
            }
        }
        series.push(stats.iter().map(OnlineStats::mean).collect());
    }
    Fig1Data {
        loads: loads.to_vec(),
        algorithms,
        series,
    }
}

impl Fig1Data {
    /// The figure as a table: rows = loads, columns = algorithms.
    pub fn table(&self) -> TextTable {
        let mut header = vec!["load".to_string()];
        header.extend(self.algorithms.iter().map(|a| a.name().to_string()));
        let mut t = TextTable::new(header);
        for (l, row) in self.loads.iter().zip(self.series.iter()) {
            let mut cells = vec![format!("{l:.1}")];
            cells.extend(row.iter().map(|d| format!("{d:.2}")));
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_inputs() {
        let data = run(2, 30, &[0.3, 0.6], 0.0, 3, 4);
        assert_eq!(data.loads, vec![0.3, 0.6]);
        assert_eq!(data.series.len(), 2);
        assert_eq!(data.series[0].len(), 9);
        // Degradations are ≥ 1 and at least one algorithm is near-best on
        // average... (≥ 1 for all).
        for row in &data.series {
            for &d in row {
                assert!(d >= 1.0);
            }
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let data = run(1, 25, &[0.5], 0.0, 7, 2);
        let text = data.table().render();
        assert!(text.contains("FCFS"));
        assert_eq!(text.lines().count(), 3);
    }
}
