//! # dfrs-experiments
//!
//! The harness that regenerates **every table and figure** of the IPDPS
//! 2010 DFRS paper (see DESIGN.md §4 for the experiment index):
//!
//! * Figure 1(a)/(b) — average stretch-degradation factor vs offered
//!   load, without/with the 5-minute rescheduling penalty
//!   ([`fig1`], binary `fig1`);
//! * Table I — degradation avg/std/max on scaled synthetic, unscaled
//!   synthetic, and HPC2N(-like) workloads ([`table1`], binary `table1`);
//! * Table II — preemption/migration bandwidth and occurrence rates at
//!   load ≥ 0.7 ([`table2`], binary `table2`);
//! * §V timing study — `DYNMCB8` allocation compute time vs jobs in
//!   system ([`timing`], binary `timing`);
//! * availability study (extension) — every registered spec on a
//!   platform with node failure/repair churn, static vs churn
//!   ([`availability`], binary `availability`);
//! * DRF study (extension) — max-min yield vs max-min dominant share
//!   on GPU-annotated workloads, CPU-only vs annotated
//!   ([`drf`], binary `drf`).
//!
//! Execution goes through [`dfrs_scenario::Campaign`] — the generic
//! parallel `(scenario × scheduler spec)` runner — with workloads
//! materialized by [`instances`] and tables rendered by [`report`].
//! Any spec the [`dfrs_sched::SchedulerRegistry`] resolves can be run
//! from the binaries via `--algo` without recompiling.
//!
//! Scale: binaries default to a laptop-scale subset and accept
//! `--paper-scale` for the full 100-instance configuration. Every run is
//! deterministic given `--seed`.

pub mod ablation;
pub mod availability;
pub mod cli;
pub mod drf;
pub mod fig1;
pub mod instances;
pub mod report;
pub mod robustness;
pub mod table1;
pub mod table2;
pub mod timing;

pub use dfrs_scenario::{Campaign, CampaignResult, CellResult, Scenario, ScenarioBuilder};
