//! # dfrs-experiments
//!
//! The harness that regenerates **every table and figure** of the IPDPS
//! 2010 DFRS paper (see DESIGN.md §4 for the experiment index):
//!
//! * Figure 1(a)/(b) — average stretch-degradation factor vs offered
//!   load, without/with the 5-minute rescheduling penalty
//!   ([`fig1`], binary `fig1`);
//! * Table I — degradation avg/std/max on scaled synthetic, unscaled
//!   synthetic, and HPC2N(-like) workloads ([`table1`], binary `table1`);
//! * Table II — preemption/migration bandwidth and occurrence rates at
//!   load ≥ 0.7 ([`table2`], binary `table2`);
//! * §V timing study — `DYNMCB8` allocation compute time vs jobs in
//!   system ([`timing`], binary `timing`).
//!
//! [`runner`] executes (instance × algorithm) simulations across threads
//! (`std::thread::scope` workers over an atomic work counter) and reduces
//! outcomes to compact [`runner::RunSummary`] values;
//! [`instances`] materializes the paper's workloads; [`report`] renders
//! aligned text/CSV tables.
//!
//! Scale: binaries default to a laptop-scale subset and accept
//! `--paper-scale` for the full 100-instance configuration. Every run is
//! deterministic given `--seed`.

pub mod ablation;
pub mod cli;
pub mod fig1;
pub mod instances;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod table1;
pub mod table2;
pub mod timing;

pub use instances::Instance;
pub use runner::{run_matrix, RunSummary};
