//! Table I — degradation-factor statistics (avg, std, max) for the three
//! workload families, all with the 5-minute rescheduling penalty.

use dfrs_core::OnlineStats;
use dfrs_scenario::{Campaign, Scenario};
use dfrs_sched::Algorithm;

use crate::instances::{
    hpc2n_like_instances, hpc2n_swf_instances, scaled_instances, unscaled_instances,
};
use crate::report::{f2, TextTable};

/// One family's aggregated column triple.
#[derive(Debug, Clone)]
pub struct FamilyStats {
    /// Family label (e.g. "Scaled synthetic traces").
    pub family: String,
    /// Per algorithm (Table I order): degradation stats.
    pub per_algo: Vec<OnlineStats>,
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table1Data {
    /// Algorithms, Table I order.
    pub algorithms: Vec<Algorithm>,
    /// The three families.
    pub families: Vec<FamilyStats>,
}

/// Inputs controlling the run.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Synthetic base traces.
    pub seeds: u64,
    /// Jobs per synthetic trace.
    pub jobs: usize,
    /// Loads for the scaled family.
    pub loads: Vec<f64>,
    /// Rescheduling penalty (the paper's Table I uses 300).
    pub penalty: f64,
    /// Base RNG seed.
    pub seed0: u64,
    /// Worker threads.
    pub threads: usize,
    /// HPC2N-like weeks (when `swf_text` is None).
    pub weeks: u32,
    /// HPC2N-like weekly job volume (the real trace averages ≈ 1,100).
    pub hpc2n_jobs_per_week: f64,
    /// Real SWF content, if provided.
    pub swf_text: Option<String>,
}

fn family(
    label: &str,
    instances: &[Scenario],
    algorithms: &[Algorithm],
    penalty: f64,
    threads: usize,
) -> FamilyStats {
    let result = Campaign::over(instances, algorithms)
        .penalty(penalty)
        .threads(threads)
        .run();
    FamilyStats {
        family: label.to_string(),
        per_algo: result.degradation_stats(),
    }
}

/// Run all three families.
pub fn run(cfg: &Table1Config) -> Table1Data {
    let algorithms = Algorithm::ALL.to_vec();
    let mut families = Vec::with_capacity(3);

    // Scaled family, one load at a time (memory; per-instance baseline).
    {
        let mut per_algo = vec![OnlineStats::new(); algorithms.len()];
        for &load in &cfg.loads {
            let instances = scaled_instances(cfg.seeds, cfg.jobs, &[load], cfg.seed0);
            let f = family("scaled", &instances, &algorithms, cfg.penalty, cfg.threads);
            for (acc, s) in per_algo.iter_mut().zip(f.per_algo.iter()) {
                acc.merge(s);
            }
        }
        families.push(FamilyStats {
            family: "Scaled synthetic traces".into(),
            per_algo,
        });
    }

    {
        let instances = unscaled_instances(cfg.seeds, cfg.jobs, cfg.seed0);
        families.push(family(
            "Unscaled synthetic traces",
            &instances,
            &algorithms,
            cfg.penalty,
            cfg.threads,
        ));
    }

    {
        let instances: Vec<Scenario> = match &cfg.swf_text {
            Some(text) => hpc2n_swf_instances(text).expect("SWF parse failed"),
            None => hpc2n_like_instances(
                cfg.weeks,
                cfg.hpc2n_jobs_per_week,
                cfg.seed0 ^ 0x4850_4332, // "HPC2"
            ),
        };
        families.push(family(
            "Real-world trace (HPC2N-like)",
            &instances,
            &algorithms,
            cfg.penalty,
            cfg.threads,
        ));
    }

    Table1Data {
        algorithms,
        families,
    }
}

impl Table1Data {
    /// Render in the paper's layout: one row per algorithm, three
    /// (avg, std, max) column groups.
    pub fn table(&self) -> TextTable {
        let mut header = vec!["Algorithm".to_string()];
        for f in &self.families {
            let tag = match f.family.as_str() {
                s if s.starts_with("Scaled") => "scaled",
                s if s.starts_with("Unscaled") => "unscaled",
                _ => "hpc2n",
            };
            header.push(format!("{tag}-avg"));
            header.push(format!("{tag}-std"));
            header.push(format!("{tag}-max"));
        }
        let mut t = TextTable::new(header);
        for (a, algo) in self.algorithms.iter().enumerate() {
            let mut cells = vec![algo.name().to_string()];
            for fam in &self.families {
                let s = &fam.per_algo[a];
                cells.push(f2(s.mean()));
                cells.push(f2(s.std_dev()));
                cells.push(f2(s.max()));
            }
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_families_with_nine_algorithms() {
        let cfg = Table1Config {
            seeds: 1,
            jobs: 25,
            loads: vec![0.5],
            penalty: 300.0,
            seed0: 2,
            threads: 4,
            weeks: 2,
            hpc2n_jobs_per_week: 60.0,
            swf_text: None,
        };
        let data = run(&cfg);
        assert_eq!(data.families.len(), 3);
        for f in &data.families {
            assert_eq!(f.per_algo.len(), 9);
            for s in &f.per_algo {
                assert!(s.count() > 0, "{}", f.family);
                assert!(s.mean() >= 1.0);
                assert!(s.max() >= s.mean());
            }
        }
        let text = data.table().render();
        assert!(text.contains("FCFS") && text.contains("hpc2n-max"));
    }
}
