//! Table II — preemption and migration costs on the scaled synthetic
//! traces with load ≥ 0.7: average storage bandwidth (GB/s), occurrences
//! per hour, occurrences per job; averages over instances with maxima in
//! parentheses.

use dfrs_core::OnlineStats;
use dfrs_scenario::Campaign;
use dfrs_sched::Algorithm;

use crate::instances::scaled_instances;
use crate::report::{avg_max, TextTable};

/// Accumulated cost statistics for one algorithm.
#[derive(Debug, Clone, Default)]
pub struct CostStats {
    /// GB/s moved by preemptions.
    pub pmtn_bw: OnlineStats,
    /// GB/s moved by migrations.
    pub migr_bw: OnlineStats,
    /// Preemptions per hour.
    pub pmtn_per_hour: OnlineStats,
    /// Migrations per hour.
    pub migr_per_hour: OnlineStats,
    /// Preemptions per job.
    pub pmtn_per_job: OnlineStats,
    /// Migrations per job.
    pub migr_per_job: OnlineStats,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// The six preempting algorithms (Table II order).
    pub algorithms: Vec<Algorithm>,
    /// Stats aligned with `algorithms`.
    pub stats: Vec<CostStats>,
}

/// Run the experiment: high-load scaled traces, 5-minute penalty as in
/// the paper (`penalty` configurable for ablations).
pub fn run(
    seeds: u64,
    jobs: usize,
    high_loads: &[f64],
    penalty: f64,
    seed0: u64,
    threads: usize,
) -> Table2Data {
    let algorithms = Algorithm::PREEMPTING.to_vec();
    let mut stats = vec![CostStats::default(); algorithms.len()];
    for &load in high_loads {
        let instances = scaled_instances(seeds, jobs, &[load], seed0);
        let result = Campaign::over(&instances, &algorithms)
            .penalty(penalty)
            .threads(threads)
            .run();
        for row in &result.cells {
            for (a, s) in row.iter().enumerate() {
                stats[a].pmtn_bw.push(s.preemption_bandwidth_gbs());
                stats[a].migr_bw.push(s.migration_bandwidth_gbs());
                stats[a].pmtn_per_hour.push(s.preemptions_per_hour());
                stats[a].migr_per_hour.push(s.migrations_per_hour());
                stats[a].pmtn_per_job.push(s.preemptions_per_job());
                stats[a].migr_per_job.push(s.migrations_per_job());
            }
        }
    }
    Table2Data { algorithms, stats }
}

impl Table2Data {
    /// Render in the paper's layout.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "Algorithm",
            "pmtn GB/s",
            "migr GB/s",
            "pmtn /hour",
            "migr /hour",
            "pmtn /job",
            "migr /job",
        ]);
        for (algo, s) in self.algorithms.iter().zip(self.stats.iter()) {
            t.row(vec![
                algo.name().to_string(),
                avg_max(s.pmtn_bw.mean(), s.pmtn_bw.max()),
                avg_max(s.migr_bw.mean(), s.migr_bw.max()),
                avg_max(s.pmtn_per_hour.mean(), s.pmtn_per_hour.max()),
                avg_max(s.migr_per_hour.mean(), s.migr_per_hour.max()),
                avg_max(s.pmtn_per_job.mean(), s.pmtn_per_job.max()),
                avg_max(s.migr_per_job.mean(), s.migr_per_job.max()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_preempting_algorithms_reported() {
        let data = run(1, 30, &[0.8], 300.0, 4, 4);
        assert_eq!(data.algorithms.len(), 6);
        // Greedy-pmtn never migrates by construction.
        let gp = data
            .algorithms
            .iter()
            .position(|a| *a == Algorithm::GreedyPmtn)
            .unwrap();
        assert_eq!(data.stats[gp].migr_per_hour.max(), 0.0);
        let text = data.table().render();
        assert!(text.contains("pmtn GB/s"));
        assert_eq!(text.lines().count(), 8);
    }

    #[test]
    fn dynmcb8_moves_more_than_periodic_variants() {
        // The paper's qualitative claim: event-driven DYNMCB8 has the
        // highest migration rate.
        let data = run(2, 40, &[0.8], 300.0, 11, 4);
        let idx = |a: Algorithm| data.algorithms.iter().position(|x| *x == a).unwrap();
        let event = data.stats[idx(Algorithm::DynMcb8)].migr_per_job.mean();
        let per = data.stats[idx(Algorithm::DynMcb8Per)].migr_per_job.mean();
        assert!(
            event >= per,
            "DynMCB8 migrations/job {event} < periodic {per}"
        );
    }
}
