//! Parallel execution of (instance × algorithm) simulations and the
//! degradation-factor reduction (Section V).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dfrs_core::stretch::degradation_factor;
use dfrs_core::OnlineStats;
use dfrs_sched::Algorithm;
use dfrs_sim::{simulate, SimConfig, SimOutcome};

use crate::instances::Instance;

/// Compact per-run result (drops per-job records to keep 900-instance
/// matrices cheap).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Which algorithm produced this.
    pub algorithm: Algorithm,
    /// Maximum bounded stretch.
    pub max_stretch: f64,
    /// Mean bounded stretch.
    pub mean_stretch: f64,
    /// Last completion time.
    pub makespan: f64,
    /// Pause occurrences.
    pub preemption_count: u64,
    /// Move occurrences.
    pub migration_count: u64,
    /// GB moved by pauses/resumes.
    pub preemption_gb: f64,
    /// GB moved by migrations.
    pub migration_gb: f64,
    /// Jobs simulated.
    pub n_jobs: usize,
    /// Total scheduler wall-clock seconds.
    pub sched_wall_total: f64,
    /// Worst single scheduler invocation (seconds).
    pub sched_wall_max: f64,
}

impl RunSummary {
    fn from_outcome(algorithm: Algorithm, o: &SimOutcome) -> Self {
        RunSummary {
            algorithm,
            max_stretch: o.max_stretch,
            mean_stretch: o.mean_stretch,
            makespan: o.makespan,
            preemption_count: o.preemption_count,
            migration_count: o.migration_count,
            preemption_gb: o.preemption_gb,
            migration_gb: o.migration_gb,
            n_jobs: o.records.len(),
            sched_wall_total: o.sched_wall_total,
            sched_wall_max: o.sched_wall_max,
        }
    }

    /// GB/s through storage due to preemptions (Table II).
    pub fn preemption_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_gb / self.makespan
        } else {
            0.0
        }
    }

    /// GB/s through storage due to migrations (Table II).
    pub fn migration_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_gb / self.makespan
        } else {
            0.0
        }
    }

    /// Preemptions per simulated hour (Table II).
    pub fn preemptions_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_count as f64 * 3600.0 / self.makespan
        } else {
            0.0
        }
    }

    /// Migrations per simulated hour (Table II).
    pub fn migrations_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_count as f64 * 3600.0 / self.makespan
        } else {
            0.0
        }
    }

    /// Preemptions per job (Table II).
    pub fn preemptions_per_job(&self) -> f64 {
        if self.n_jobs > 0 {
            self.preemption_count as f64 / self.n_jobs as f64
        } else {
            0.0
        }
    }

    /// Migrations per job (Table II).
    pub fn migrations_per_job(&self) -> f64 {
        if self.n_jobs > 0 {
            self.migration_count as f64 / self.n_jobs as f64
        } else {
            0.0
        }
    }
}

/// Run every algorithm on every instance, `threads`-wide. Returns
/// `results[instance][algo]` aligned with the input orders.
pub fn run_matrix(
    instances: &[Instance],
    algorithms: &[Algorithm],
    penalty: f64,
    threads: usize,
) -> Vec<Vec<RunSummary>> {
    let threads = threads.max(1);
    let n_units = instances.len() * algorithms.len();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Vec<Option<RunSummary>>>> =
        Mutex::new(vec![vec![None; algorithms.len()]; instances.len()]);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_units.max(1)) {
            scope.spawn(|| loop {
                let unit = next.fetch_add(1, Ordering::Relaxed);
                if unit >= n_units {
                    break;
                }
                let (i, a) = (unit / algorithms.len(), unit % algorithms.len());
                let inst = &instances[i];
                let algo = algorithms[a];
                let cfg = SimConfig {
                    penalty,
                    ..SimConfig::default()
                };
                let outcome = simulate(inst.cluster, &inst.jobs, algo.build().as_mut(), &cfg);
                let summary = RunSummary::from_outcome(algo, &outcome);
                results.lock().expect("no poisoned runs")[i][a] = Some(summary);
            });
        }
    });

    results
        .into_inner()
        .expect("scope joined")
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|s| s.expect("all units executed"))
                .collect()
        })
        .collect()
}

/// A named scheduler factory for ablation matrices (custom
/// configurations that are not part of [`Algorithm::ALL`]).
pub type SchedulerBuilder<'a> = (
    &'a str,
    &'a (dyn Fn() -> Box<dyn dfrs_sim::Scheduler> + Sync),
);

/// Like [`run_matrix`] but over arbitrary scheduler factories; returns
/// `(name, max_stretch, mean_stretch, preemptions, migrations, moved_gb)`
/// rows aligned `[instance][builder]`.
pub fn run_matrix_with(
    instances: &[Instance],
    builders: &[SchedulerBuilder<'_>],
    penalty: f64,
    threads: usize,
) -> Vec<Vec<CustomRun>> {
    let threads = threads.max(1);
    let n_units = instances.len() * builders.len();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Vec<Option<CustomRun>>>> =
        Mutex::new(vec![vec![None; builders.len()]; instances.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_units.max(1)) {
            scope.spawn(|| loop {
                let unit = next.fetch_add(1, Ordering::Relaxed);
                if unit >= n_units {
                    break;
                }
                let (i, b) = (unit / builders.len(), unit % builders.len());
                let inst = &instances[i];
                let (name, build) = builders[b];
                let cfg = SimConfig {
                    penalty,
                    ..SimConfig::default()
                };
                let out = simulate(inst.cluster, &inst.jobs, build().as_mut(), &cfg);
                let run = CustomRun {
                    name: name.to_string(),
                    max_stretch: out.max_stretch,
                    mean_stretch: out.mean_stretch,
                    preemption_count: out.preemption_count,
                    migration_count: out.migration_count,
                    moved_gb: out.preemption_gb + out.migration_gb,
                };
                results.lock().expect("no poisoned runs")[i][b] = Some(run);
            });
        }
    });
    results
        .into_inner()
        .expect("scope joined")
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|s| s.expect("all units executed"))
                .collect()
        })
        .collect()
}

/// Result row of [`run_matrix_with`].
#[derive(Debug, Clone)]
pub struct CustomRun {
    /// Builder name.
    pub name: String,
    /// Maximum bounded stretch.
    pub max_stretch: f64,
    /// Mean bounded stretch.
    pub mean_stretch: f64,
    /// Pause occurrences.
    pub preemption_count: u64,
    /// Move occurrences.
    pub migration_count: u64,
    /// Total GB through storage.
    pub moved_gb: f64,
}

/// Per-instance degradation factors: each algorithm's max stretch over
/// the best max stretch on that instance (Section V).
pub fn degradation_row(row: &[RunSummary]) -> Vec<f64> {
    let best = row
        .iter()
        .map(|s| s.max_stretch)
        .fold(f64::INFINITY, f64::min);
    row.iter()
        .map(|s| degradation_factor(s.max_stretch, best))
        .collect()
}

/// Aggregate degradation statistics per algorithm over a result matrix.
pub fn degradation_stats(results: &[Vec<RunSummary>], n_algos: usize) -> Vec<OnlineStats> {
    let mut stats = vec![OnlineStats::new(); n_algos];
    for row in results {
        debug_assert_eq!(row.len(), n_algos);
        for (a, d) in degradation_row(row).into_iter().enumerate() {
            stats[a].push(d);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::scaled_instances;

    fn tiny_matrix() -> (Vec<Instance>, Vec<Algorithm>, Vec<Vec<RunSummary>>) {
        let instances = scaled_instances(2, 25, &[0.5], 11);
        let algos = vec![Algorithm::Fcfs, Algorithm::Easy, Algorithm::GreedyPmtn];
        let results = run_matrix(&instances, &algos, 0.0, 4);
        (instances, algos, results)
    }

    #[test]
    fn matrix_shape_and_alignment() {
        let (instances, algos, results) = tiny_matrix();
        assert_eq!(results.len(), instances.len());
        for row in &results {
            assert_eq!(row.len(), algos.len());
            for (s, a) in row.iter().zip(algos.iter()) {
                assert_eq!(s.algorithm, *a);
                assert_eq!(s.n_jobs, 25);
            }
        }
    }

    #[test]
    fn degradation_row_has_a_unit_entry() {
        let (_, _, results) = tiny_matrix();
        for row in &results {
            let degs = degradation_row(row);
            assert!(degs.iter().any(|&d| (d - 1.0).abs() < 1e-12), "{degs:?}");
            assert!(degs.iter().all(|&d| d >= 1.0));
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let instances = scaled_instances(1, 20, &[0.4], 5);
        let algos = vec![Algorithm::Fcfs, Algorithm::GreedyPmtn];
        let par = run_matrix(&instances, &algos, 300.0, 8);
        let ser = run_matrix(&instances, &algos, 300.0, 1);
        for (p, s) in par.iter().flatten().zip(ser.iter().flatten()) {
            assert_eq!(p.max_stretch, s.max_stretch);
            assert_eq!(p.preemption_count, s.preemption_count);
        }
    }

    #[test]
    fn degradation_stats_aggregate() {
        let (_, algos, results) = tiny_matrix();
        let stats = degradation_stats(&results, algos.len());
        assert_eq!(stats.len(), algos.len());
        assert!(stats.iter().all(|s| s.count() == results.len() as u64));
        assert!(stats.iter().all(|s| s.mean() >= 1.0));
    }
}
