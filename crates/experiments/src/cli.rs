//! Minimal hand-rolled CLI parsing shared by the experiment binaries
//! (keeps the dependency set to the approved list — no clap).

use dfrs_sched::{Algorithm, SchedulerRegistry, SchedulerSpec};
use dfrs_sim::{FailurePolicy, MigrationMode};

/// Parse `--migration` values: `stop-and-copy`, `live` (60 s freeze),
/// or `live:freeze=SECS`.
pub fn parse_migration(s: &str) -> Result<MigrationMode, String> {
    let s = s.trim();
    match s {
        "stop-and-copy" => Ok(MigrationMode::StopAndCopy),
        "live" => Ok(MigrationMode::Live { freeze_secs: 60.0 }),
        _ => match s.strip_prefix("live:freeze=") {
            Some(v) => {
                let freeze: f64 = v
                    .parse()
                    .map_err(|_| format!("bad freeze seconds {v:?} in --migration {s:?}"))?;
                if freeze.is_finite() && freeze >= 0.0 {
                    Ok(MigrationMode::Live {
                        freeze_secs: freeze,
                    })
                } else {
                    Err(format!("freeze seconds must be non-negative, got {v}"))
                }
            }
            None => Err(format!(
                "unknown migration mode {s:?} (expected stop-and-copy | live | live:freeze=SECS)"
            )),
        },
    }
}

/// Parse `--failure-policy` values: `restart` or `preserve`.
pub fn parse_failure_policy(s: &str) -> Result<FailurePolicy, String> {
    match s.trim() {
        "restart" => Ok(FailurePolicy::Restart),
        "preserve" | "pause-preserve" => Ok(FailurePolicy::PausePreserve),
        other => Err(format!(
            "unknown failure policy {other:?} (expected restart | preserve)"
        )),
    }
}

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Scheduler specs to run (`--algo`), comma-separated; empty means
    /// each binary's default set.
    pub algos: Vec<SchedulerSpec>,
    /// Base traces (seeds) per family.
    pub instances: u64,
    /// Jobs per synthetic trace.
    pub jobs: usize,
    /// Offered loads for the scaled family.
    pub loads: Vec<f64>,
    /// Rescheduling penalty in seconds.
    pub penalty: f64,
    /// RNG base seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// HPC2N-like weeks to synthesize.
    pub weeks: u32,
    /// HPC2N-like weekly job volume (real trace ≈ 1,100).
    pub hpc2n_jobs_per_week: f64,
    /// Path to a real HPC2N SWF file, if available.
    pub swf: Option<String>,
    /// Write CSV next to the printed table.
    pub csv: Option<String>,
    /// Paper-scale preset (100 instances × 1000 jobs × 182 weeks).
    pub paper_scale: bool,
    /// Migration mechanism override (`--migration`); `None` keeps each
    /// scenario's configured mode (stop-and-copy by default).
    pub migration: Option<MigrationMode>,
    /// Mean time between failures per node (`--mtbf`, seconds) for the
    /// availability study.
    pub mtbf_secs: f64,
    /// Mean time to repair per node (`--mttr`, seconds).
    pub mttr_secs: f64,
    /// What a failure does to struck jobs (`--failure-policy`).
    pub failure_policy: FailurePolicy,
    /// Fraction of jobs annotated with a GPU demand (`--gpu-frac`) for
    /// the DRF study; `0` leaves every trace CPU+memory only.
    pub gpu_frac: f64,
    /// Cluster shards (`--shards`); above 1, every selected spec is
    /// wrapped in `sharded:<spec>:shards=N`.
    pub shards: u32,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            algos: Vec::new(),
            instances: 10,
            jobs: 400,
            loads: dfrs_core::constants::SCALED_LOADS.to_vec(),
            penalty: dfrs_core::constants::RESCHEDULING_PENALTY_SECS,
            seed: 1,
            threads: 0,
            weeks: 12,
            hpc2n_jobs_per_week: 300.0,
            swf: None,
            csv: None,
            paper_scale: false,
            migration: None,
            // Availability-study defaults: one failure every ~14 simulated
            // days per node, hour-scale repairs — enough churn to strike a
            // laptop-scale trace several times without drowning it.
            mtbf_secs: 1_209_600.0,
            mttr_secs: 3_600.0,
            failure_policy: FailurePolicy::Restart,
            // DRF-study default: strike a bit under half the jobs with
            // a GPU demand so dominant shares actually differ.
            gpu_frac: 0.4,
            shards: 1,
        }
    }
}

impl Opts {
    /// Parse `--key value` style arguments. Returns an error string
    /// suitable for printing with usage.
    pub fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut grab = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("missing value after {arg}"))
            };
            match arg.as_str() {
                "--algo" => {
                    let reg = SchedulerRegistry::builtin();
                    for part in grab()?.split(',') {
                        o.algos
                            .push(reg.parse(part).map_err(|e| format!("--algo: {e}"))?);
                    }
                }
                "--instances" => o.instances = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--jobs" => o.jobs = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--loads" => {
                    o.loads = grab()?
                        .split(',')
                        .map(|s| s.trim().parse::<f64>().map_err(|e| format!("{e}")))
                        .collect::<Result<Vec<f64>, String>>()?;
                }
                "--penalty" => o.penalty = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => o.seed = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--threads" => o.threads = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--weeks" => o.weeks = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--jobs-per-week" => {
                    o.hpc2n_jobs_per_week = grab()?.parse().map_err(|e| format!("{e}"))?
                }
                "--swf" => o.swf = Some(grab()?),
                "--csv" => o.csv = Some(grab()?),
                "--paper-scale" => o.paper_scale = true,
                "--migration" => o.migration = Some(parse_migration(&grab()?)?),
                "--mtbf" => o.mtbf_secs = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--mttr" => o.mttr_secs = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--failure-policy" => o.failure_policy = parse_failure_policy(&grab()?)?,
                "--gpu-frac" => o.gpu_frac = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--shards" => o.shards = grab()?.parse().map_err(|e| format!("{e}"))?,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument {other}\n{USAGE}")),
            }
        }
        if o.paper_scale {
            o.instances = 100;
            o.jobs = 1_000;
            o.weeks = 182;
            o.hpc2n_jobs_per_week = 1_100.0;
        }
        if o.threads == 0 {
            o.threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
        }
        if o.loads.iter().any(|l| *l <= 0.0 || l.is_nan()) {
            return Err("loads must be positive".into());
        }
        if !(o.mtbf_secs > 0.0 && o.mttr_secs > 0.0) {
            return Err("mtbf/mttr must be positive".into());
        }
        if !((0.0..=1.0).contains(&o.gpu_frac) && o.gpu_frac.is_finite()) {
            return Err("gpu-frac must be in [0, 1]".into());
        }
        if o.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        Ok(o)
    }

    /// The specs `--algo` selected, or `default` (usually
    /// [`Algorithm::ALL`]) when none were given. With `--shards N` for
    /// `N > 1`, every spec is wrapped in `sharded:<spec>:shards=N`
    /// (specs already sharded are left alone — nesting is rejected by
    /// the registry grammar).
    pub fn specs_or(&self, default: &[Algorithm]) -> Vec<SchedulerSpec> {
        let specs = if self.algos.is_empty() {
            default.iter().map(Algorithm::spec).collect()
        } else {
            self.algos.clone()
        };
        if self.shards <= 1 {
            return specs;
        }
        let reg = SchedulerRegistry::builtin();
        specs
            .into_iter()
            .map(|s| {
                let text = s.to_string();
                if text.starts_with("sharded:") {
                    return s;
                }
                reg.parse(&format!("sharded:{text}:shards={}", self.shards))
                    .expect("wrapping a canonical spec in sharded: cannot fail")
            })
            .collect()
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "\
Options:
  --algo S1,S2,..   scheduler specs to run instead of the default set
                    (any registry spec, e.g. dynmcb8-per:t=60)
  --instances N     base synthetic traces (default 10; paper: 100)
  --jobs N          jobs per synthetic trace (default 400; paper: 1000)
  --loads L1,L2,..  offered loads (default 0.1..0.9)
  --penalty SECS    rescheduling penalty (default 300; figure 1(a): 0)
  --seed N          RNG base seed (default 1)
  --threads N       worker threads (default: all cores)
  --weeks N         HPC2N-like weeks (default 12; paper: 182)
  --jobs-per-week N HPC2N-like weekly volume (default 300; paper: 1100)
  --swf PATH        use a real HPC2N SWF file instead of the generator
  --csv PATH        also write the table as CSV
  --paper-scale     preset: 100 instances, 1000 jobs, 182 weeks
  --migration M     stop-and-copy | live | live:freeze=SECS
                    (migration mechanism; default stop-and-copy)
  --mtbf SECS       per-node mean time between failures (availability)
  --mttr SECS       per-node mean time to repair (availability)
  --failure-policy P restart | preserve (what a failure does to jobs)
  --gpu-frac F      fraction of jobs given a GPU demand (DRF study)
  --shards N        partition the cluster: wrap every spec in
                    sharded:<spec>:shards=N (default 1 = unsharded)";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Opts, String> {
        Opts::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_without_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.instances, 10);
        assert_eq!(o.loads.len(), 9);
        assert!(o.threads >= 1);
    }

    #[test]
    fn parses_each_option() {
        let o = parse(&[
            "--instances",
            "3",
            "--jobs",
            "50",
            "--loads",
            "0.2,0.4",
            "--penalty",
            "0",
            "--seed",
            "9",
            "--threads",
            "2",
            "--weeks",
            "4",
            "--csv",
            "/tmp/x.csv",
        ])
        .unwrap();
        assert_eq!(o.instances, 3);
        assert_eq!(o.jobs, 50);
        assert_eq!(o.loads, vec![0.2, 0.4]);
        assert_eq!(o.penalty, 0.0);
        assert_eq!(o.seed, 9);
        assert_eq!(o.threads, 2);
        assert_eq!(o.weeks, 4);
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn paper_scale_presets() {
        let o = parse(&["--paper-scale"]).unwrap();
        assert_eq!(o.instances, 100);
        assert_eq!(o.jobs, 1000);
        assert_eq!(o.weeks, 182);
    }

    #[test]
    fn rejects_unknown_and_incomplete() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--loads", "0,-1"]).is_err());
    }

    #[test]
    fn migration_and_failure_options_parse() {
        let o = parse(&[
            "--migration",
            "live:freeze=45",
            "--mtbf",
            "86400",
            "--mttr",
            "1800",
            "--failure-policy",
            "preserve",
        ])
        .unwrap();
        assert_eq!(o.migration, Some(MigrationMode::Live { freeze_secs: 45.0 }));
        assert_eq!(o.mtbf_secs, 86_400.0);
        assert_eq!(o.mttr_secs, 1_800.0);
        assert_eq!(o.failure_policy, FailurePolicy::PausePreserve);

        assert_eq!(
            parse(&["--migration", "stop-and-copy"]).unwrap().migration,
            Some(MigrationMode::StopAndCopy)
        );
        assert_eq!(
            parse(&["--migration", "live"]).unwrap().migration,
            Some(MigrationMode::Live { freeze_secs: 60.0 })
        );
        assert!(parse(&["--migration", "teleport"]).is_err());
        assert!(parse(&["--migration", "live:freeze=-3"]).is_err());
        assert!(parse(&["--failure-policy", "shrug"]).is_err());
        assert!(parse(&["--mtbf", "0"]).is_err());
    }

    #[test]
    fn gpu_frac_parses_and_is_bounded() {
        assert_eq!(parse(&["--gpu-frac", "0.25"]).unwrap().gpu_frac, 0.25);
        assert_eq!(parse(&["--gpu-frac", "0"]).unwrap().gpu_frac, 0.0);
        assert!(parse(&["--gpu-frac", "1.5"]).is_err());
        assert!(parse(&["--gpu-frac", "-0.1"]).is_err());
        assert!(parse(&["--gpu-frac", "NaN"]).is_err());
    }

    #[test]
    fn shards_wrap_every_selected_spec() {
        let o = parse(&["--algo", "fcfs,dynmcb8-per:T=60", "--shards", "4"]).unwrap();
        let specs = o.specs_or(&Algorithm::ALL);
        assert_eq!(specs[0].to_string(), "sharded:fcfs:shards=4");
        assert_eq!(specs[1].to_string(), "sharded:dynmcb8-per:t=60:shards=4");

        // Already-sharded specs are not double-wrapped.
        let o = parse(&["--algo", "sharded:fcfs:shards=2", "--shards", "4"]).unwrap();
        assert_eq!(
            o.specs_or(&Algorithm::ALL)[0].to_string(),
            "sharded:fcfs:shards=2"
        );

        // shards=1 leaves everything bare; 0 is rejected.
        let o = parse(&["--algo", "fcfs", "--shards", "1"]).unwrap();
        assert_eq!(o.specs_or(&Algorithm::ALL)[0].to_string(), "fcfs");
        assert!(parse(&["--shards", "0"]).is_err());
    }

    #[test]
    fn algo_specs_parse_and_default() {
        let o = parse(&["--algo", "fcfs,dynmcb8-per:T=60"]).unwrap();
        assert_eq!(o.algos.len(), 2);
        assert_eq!(o.algos[1].to_string(), "dynmcb8-per:t=60");
        assert_eq!(o.specs_or(&Algorithm::ALL), o.algos);

        let d = parse(&[]).unwrap();
        assert_eq!(d.specs_or(&Algorithm::ALL).len(), 9);

        let err = parse(&["--algo", "dynmbc8"]).unwrap_err();
        assert!(err.contains("known:"), "{err}");
    }
}
