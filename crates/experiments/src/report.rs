//! Plain-text and CSV table rendering for the experiment binaries.

/// A rectangular table with a header row, rendered either aligned for
/// terminals or as CSV for plotting scripts.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Column-aligned text rendering.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = widths[i])
                    } else {
                        format!("{:>w$}", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (naive quoting: fields containing commas are
    /// wrapped; the harness never emits quotes inside fields).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// `12.35` style, two decimals, thousands-friendly for degradations.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Compact `avg (max)` cell used by Table II.
pub fn avg_max(avg: f64, max: f64) -> String {
    format!("{avg:.2} ({max:.2})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["Algorithm", "avg", "max"]);
        t.row(vec!["FCFS", "435.32", "1470.30"]);
        t.row(vec!["DynMCB8-asap-per 600", "2.62", "12.77"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Algorithm"));
        // Columns right-aligned: both data lines end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_is_parseable() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f2(12.345), "12.35");
        assert_eq!(avg_max(0.6, 1.31), "0.60 (1.31)");
    }
}
