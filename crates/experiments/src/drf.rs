//! The **DRF study**: max-min yield vs max-min dominant share when a
//! workload is no longer CPU+memory only.
//!
//! The paper's schedulers maximize the minimum *yield* — correct when
//! CPU is the only fluid resource. This study annotates a fraction of
//! the scaled Lublin jobs with a GPU demand
//! ([`dfrs_scenario::ScenarioBuilder::gpu_frac`]) and runs the yield
//! family (`dynmcb8`, `dynmcb8-per`) head to head against the DRF
//! family (`dynmcb8-drf`, `dynmcb8-drf-per`), each on the same trace
//! twice: once CPU-only and once GPU-annotated, with full plan and
//! invariant validation (which now checks the GPU capacity on every
//! node at every event).
//!
//! The hypothesis under test (Ghodsi et al., NSDI 2011, transplanted to
//! the DFRS setting): when dominant resources differ across jobs, the
//! dominant-share objective shares contended GPUs by *dominant* demand
//! instead of starving GPU-heavy jobs behind a CPU-balanced yield, so
//! DRF's stretch degradation under GPU annotation stays flatter than
//! the yield family's.

use dfrs_scenario::{Campaign, CampaignResult, Scenario, ScenarioBuilder};
use dfrs_sched::SchedulerSpec;

use crate::availability::study_load;
use crate::cli::Opts;
use crate::report::{f2, TextTable};

/// One scheduler's row of the DRF table.
#[derive(Debug, Clone)]
pub struct DrfRow {
    /// The spec (canonical string form).
    pub spec: SchedulerSpec,
    /// Scheduler display name.
    pub name: String,
    /// Mean (over instances) max bounded stretch on the CPU-only trace.
    pub cpu_max_stretch: f64,
    /// Mean max bounded stretch on the GPU-annotated trace.
    pub gpu_max_stretch: f64,
    /// `gpu / cpu` — what the GPU contention cost the headline metric.
    pub gpu_degradation: f64,
    /// Mean mean-stretch on the GPU-annotated trace.
    pub gpu_mean_stretch: f64,
    /// Mean preemptions per instance on the GPU-annotated trace.
    pub preemptions: f64,
    /// Mean migrations per instance on the GPU-annotated trace.
    pub migrations: f64,
}

/// The study's full result: per-spec rows plus the raw matrices.
#[derive(Debug)]
pub struct DrfStudy {
    /// One row per spec, yield family first.
    pub rows: Vec<DrfRow>,
    /// The CPU-only matrix.
    pub cpu_only: CampaignResult,
    /// The GPU-annotated matrix.
    pub gpu: CampaignResult,
    /// The GPU-annotation fraction the study ran at.
    pub gpu_frac: f64,
}

/// The study's default head-to-head: the event-driven and periodic
/// members of the yield family against their DRF counterparts.
pub fn default_specs() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec::new("dynmcb8"),
        SchedulerSpec::new("dynmcb8-per").with("t", 600),
        SchedulerSpec::new("dynmcb8-drf"),
        SchedulerSpec::new("dynmcb8-drf-per").with("t", 600),
    ]
}

/// The scenario pair for one seed: identical Lublin workloads, one
/// CPU-only and one with `gpu_frac` of the jobs carrying a GPU demand.
/// Validation is **on** in both.
fn scenario_pair(opts: &Opts, seed: u64, load: f64) -> (Scenario, Scenario) {
    let base = |label: String| {
        ScenarioBuilder::new()
            .label(label)
            .lublin(opts.jobs)
            .load(load)
            .seed(seed)
            .validate(true)
    };
    let cpu = base(format!("drf-cpu-s{seed}"))
        .build()
        .expect("the Lublin model always yields a valid trace");
    let gpu = base(format!("drf-gpu-s{seed}"))
        .gpu_frac(opts.gpu_frac)
        .build()
        .expect("a gpu_frac accepted by Opts::parse is valid here");
    debug_assert_eq!(cpu.jobs.len(), gpu.jobs.len());
    (cpu, gpu)
}

/// Run the study over `opts` (specs from `--algo`, or the yield-vs-DRF
/// head-to-head when none were given) at the availability study's
/// single high-pressure load point.
pub fn run(opts: &Opts) -> DrfStudy {
    let specs = if opts.algos.is_empty() {
        default_specs()
    } else {
        opts.algos.clone()
    };
    let load = study_load(opts);
    let mut cpu_scenarios = Vec::new();
    let mut gpu_scenarios = Vec::new();
    for s in 0..opts.instances {
        let (cpu, gpu) = scenario_pair(opts, opts.seed + s, load);
        cpu_scenarios.push(cpu);
        gpu_scenarios.push(gpu);
    }

    let run_campaign = |scenarios: &[Scenario]| {
        Campaign::from_specs(scenarios, specs.clone())
            .penalty(opts.penalty)
            .threads(opts.threads)
            .migration_opt(opts.migration)
            .run()
    };
    let cpu_only = run_campaign(&cpu_scenarios);
    let gpu = run_campaign(&gpu_scenarios);

    let n = cpu_scenarios.len() as f64;
    let mean =
        |col: usize, result: &CampaignResult, f: &dyn Fn(&dfrs_scenario::CellResult) -> f64| {
            result.cells.iter().map(|row| f(&row[col])).sum::<f64>() / n
        };
    let rows = specs
        .iter()
        .enumerate()
        .map(|(a, spec)| {
            let cpu_max = mean(a, &cpu_only, &|c| c.max_stretch);
            let gpu_max = mean(a, &gpu, &|c| c.max_stretch);
            DrfRow {
                spec: spec.clone(),
                name: gpu.cells[0][a].name.clone(),
                cpu_max_stretch: cpu_max,
                gpu_max_stretch: gpu_max,
                gpu_degradation: if cpu_max > 0.0 {
                    gpu_max / cpu_max
                } else {
                    0.0
                },
                gpu_mean_stretch: mean(a, &gpu, &|c| c.mean_stretch),
                preemptions: mean(a, &gpu, &|c| c.preemption_count as f64),
                migrations: mean(a, &gpu, &|c| c.migration_count as f64),
            }
        })
        .collect();
    DrfStudy {
        rows,
        cpu_only,
        gpu,
        gpu_frac: opts.gpu_frac,
    }
}

impl DrfStudy {
    /// Render the per-spec table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "Scheduler",
            "cpu max S",
            "gpu max S",
            "degr",
            "gpu mean S",
            "pmtn",
            "migr",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                f2(r.cpu_max_stretch),
                f2(r.gpu_max_stretch),
                f2(r.gpu_degradation),
                f2(r.gpu_mean_stretch),
                f2(r.preemptions),
                f2(r.migrations),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Opts {
        Opts {
            instances: 1,
            jobs: 60,
            seed: 7,
            threads: 2,
            penalty: 0.0,
            gpu_frac: 0.5,
            ..Opts::default()
        }
    }

    #[test]
    fn study_runs_the_default_head_to_head_and_is_deterministic() {
        let opts = tiny_opts();
        let a = run(&opts);
        assert_eq!(a.rows.len(), 4);
        assert_eq!(a.rows[0].name, "DynMCB8");
        assert_eq!(a.rows[2].name, "DynMCB8-drf");
        for row in &a.rows {
            assert!(row.cpu_max_stretch >= 1.0, "{}", row.name);
            assert!(row.gpu_max_stretch >= 1.0, "{}", row.name);
        }
        let b = run(&opts);
        assert_eq!(a.cpu_only.fingerprint(), b.cpu_only.fingerprint());
        assert_eq!(a.gpu.fingerprint(), b.gpu.fingerprint());
        let rendered = a.table().render();
        assert!(rendered.contains("gpu max S"), "{rendered}");
    }

    #[test]
    fn zero_gpu_frac_makes_both_matrices_identical() {
        let mut opts = tiny_opts();
        opts.gpu_frac = 0.0;
        opts.algos = vec!["dynmcb8".parse().unwrap(), "dynmcb8-drf".parse().unwrap()];
        let study = run(&opts);
        assert_eq!(study.rows.len(), 2);
        // With nothing annotated, the "gpu" trace IS the cpu trace.
        for r in &study.rows {
            assert_eq!(r.cpu_max_stretch, r.gpu_max_stretch, "{}", r.name);
            assert_eq!(r.gpu_degradation, 1.0, "{}", r.name);
        }
    }
}
