//! Cross-model robustness check (beyond the paper): rerun the
//! degradation comparison on the **Downey** workload family instead of
//! Lublin's. If DFRS's dominance over batch scheduling only held for
//! one synthetic model's shapes, it would show up here.

use dfrs_core::OnlineStats;
use dfrs_scenario::{degradation_row, Campaign, Scenario, ScenarioBuilder};
use dfrs_sched::Algorithm;

use crate::report::TextTable;

/// Downey-family scenarios, annotated with the paper's CPU/memory rules
/// and rescaled to the given loads.
pub fn downey_instances(seeds: u64, jobs: usize, loads: &[f64], seed0: u64) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(seeds as usize * loads.len());
    for s in 0..seeds {
        let base = ScenarioBuilder::new()
            .downey(jobs)
            .seed(seed0 ^ (0xD014u64) ^ s)
            .build()
            .expect("the Downey model always yields a valid trace");
        for &load in loads {
            let mut scaled = base.scaled_to(load).expect("nonzero span");
            scaled.label = format!("downey-s{s}-load{load:.1}");
            out.push(scaled);
        }
    }
    out
}

/// Per-algorithm average degradation (with 95 % CI half-width) on the
/// Downey family.
#[derive(Debug, Clone)]
pub struct RobustnessData {
    /// Algorithms, Table I order.
    pub algorithms: Vec<Algorithm>,
    /// Per algorithm: degradation stats over all instances.
    pub stats: Vec<OnlineStats>,
}

/// Run the check.
pub fn run(
    seeds: u64,
    jobs: usize,
    loads: &[f64],
    penalty: f64,
    seed0: u64,
    threads: usize,
) -> RobustnessData {
    let algorithms = Algorithm::ALL.to_vec();
    let mut stats = vec![OnlineStats::new(); algorithms.len()];
    for &load in loads {
        let instances = downey_instances(seeds, jobs, &[load], seed0);
        let result = Campaign::over(&instances, &algorithms)
            .penalty(penalty)
            .threads(threads)
            .run();
        for row in &result.cells {
            for (a, d) in degradation_row(row).into_iter().enumerate() {
                stats[a].push(d);
            }
        }
    }
    RobustnessData { algorithms, stats }
}

impl RobustnessData {
    /// Render as a table with CI half-widths.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["Algorithm", "avg degradation", "±95% CI", "max"]);
        for (a, s) in self.algorithms.iter().zip(self.stats.iter()) {
            t.row(vec![
                a.name().to_string(),
                format!("{:.2}", s.mean()),
                format!("{:.2}", s.ci95_half_width()),
                format!("{:.2}", s.max()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downey_instances_hit_loads() {
        let insts = downey_instances(2, 40, &[0.4], 3);
        assert_eq!(insts.len(), 2);
        for i in &insts {
            let load = i.trace().offered_load();
            assert!((load - 0.4).abs() < 1e-6, "{}", i.label);
        }
    }

    #[test]
    fn dfrs_dominance_is_model_independent() {
        let data = run(2, 40, &[0.7], 0.0, 5, 2);
        let idx = |a: Algorithm| data.algorithms.iter().position(|x| *x == a).unwrap();
        let batch_best = data.stats[idx(Algorithm::Fcfs)]
            .mean()
            .min(data.stats[idx(Algorithm::Easy)].mean());
        let dfrs_best = Algorithm::PREEMPTING
            .iter()
            .map(|a| data.stats[idx(*a)].mean())
            .fold(f64::INFINITY, f64::min);
        assert!(
            dfrs_best * 5.0 < batch_best,
            "DFRS ({dfrs_best:.1}) should dominate batch ({batch_best:.1}) on Downey workloads too"
        );
        assert!(data.table().render().contains("±95% CI"));
    }
}
