//! Runs the three design-choice ablations (packer, priority exponent,
//! scheduling period) and prints one table each. See DESIGN.md §6.

use dfrs_experiments::ablation;
use dfrs_experiments::cli::Opts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let load = opts.loads.iter().copied().fold(0.0, f64::max).max(0.7);
    eprintln!(
        "Ablations: {} instances × {} jobs at load {load}, penalty 300 s",
        opts.instances, opts.jobs
    );
    let mut csv = String::new();
    for data in [
        ablation::packer_ablation(opts.instances, opts.jobs, load, opts.seed, opts.threads),
        ablation::priority_ablation(opts.instances, opts.jobs, load, opts.seed, opts.threads),
        ablation::period_ablation(opts.instances, opts.jobs, load, opts.seed, opts.threads),
    ] {
        println!("\n{}\n{}", data.title, data.table().render());
        csv.push_str(&format!("# {}\n{}", data.title, data.table().to_csv()));
    }
    if let Some(path) = &opts.csv {
        std::fs::write(path, csv).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
