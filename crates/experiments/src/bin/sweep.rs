//! Generic sweep: every algorithm × every load × both penalty settings,
//! emitting one CSV row per (algorithm, load, penalty, instance) with
//! all recorded metrics — the raw material for custom plots beyond the
//! paper's figures.
//!
//! ```sh
//! cargo run --release -p dfrs-experiments --bin sweep -- \
//!     --instances 5 --jobs 300 --loads 0.2,0.5,0.8 --csv results/sweep.csv
//! ```

use dfrs_experiments::cli::Opts;
use dfrs_experiments::instances::scaled_instances;
use dfrs_experiments::runner::run_matrix;
use dfrs_sched::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let algos = Algorithm::ALL.to_vec();
    let mut csv = String::from(
        "algorithm,load,penalty,instance,max_stretch,mean_stretch,makespan,\
         preemptions,migrations,preemption_gb,migration_gb\n",
    );
    for &penalty in &[0.0, dfrs_core::constants::RESCHEDULING_PENALTY_SECS] {
        for &load in &opts.loads {
            let instances = scaled_instances(opts.instances, opts.jobs, &[load], opts.seed);
            let results = run_matrix(&instances, &algos, penalty, opts.threads);
            for (i, row) in results.iter().enumerate() {
                for s in row {
                    csv.push_str(&format!(
                        "{},{load},{penalty},{i},{:.4},{:.4},{:.1},{},{},{:.2},{:.2}\n",
                        s.algorithm.name(),
                        s.max_stretch,
                        s.mean_stretch,
                        s.makespan,
                        s.preemption_count,
                        s.migration_count,
                        s.preemption_gb,
                        s.migration_gb,
                    ));
                }
            }
            eprintln!("done: load {load}, penalty {penalty}");
        }
    }
    match &opts.csv {
        Some(path) => {
            std::fs::write(path, &csv).expect("write CSV");
            eprintln!("CSV written to {path}");
        }
        None => print!("{csv}"),
    }
}
