//! Generic sweep: every algorithm (or `--algo` spec set) × every load ×
//! both penalty settings, emitting one CSV row per
//! (scheduler, load, penalty, instance) with all recorded metrics — the
//! raw material for custom plots beyond the paper's figures.
//!
//! ```sh
//! cargo run --release -p dfrs_experiments --bin sweep -- \
//!     --instances 5 --jobs 300 --loads 0.2,0.5,0.8 --csv results/sweep.csv
//! ```

use dfrs_experiments::cli::Opts;
use dfrs_experiments::instances::scaled_instances;
use dfrs_scenario::Campaign;
use dfrs_sched::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let specs = opts.specs_or(&Algorithm::ALL);
    let mut csv = String::from(
        "scheduler,load,penalty,instance,max_stretch,mean_stretch,makespan,\
         preemptions,migrations,preemption_gb,migration_gb\n",
    );
    for &penalty in &[0.0, dfrs_core::constants::RESCHEDULING_PENALTY_SECS] {
        for &load in &opts.loads {
            let instances = scaled_instances(opts.instances, opts.jobs, &[load], opts.seed);
            let result = Campaign::from_specs(&instances, specs.clone())
                .penalty(penalty)
                .threads(opts.threads)
                .migration_opt(opts.migration)
                .run();
            for (i, row) in result.cells.iter().enumerate() {
                for s in row {
                    csv.push_str(&format!(
                        "{},{load},{penalty},{i},{:.4},{:.4},{:.1},{},{},{:.2},{:.2}\n",
                        s.spec,
                        s.max_stretch,
                        s.mean_stretch,
                        s.makespan,
                        s.preemption_count,
                        s.migration_count,
                        s.preemption_gb,
                        s.migration_gb,
                    ));
                }
            }
            eprintln!("done: load {load}, penalty {penalty}");
        }
    }
    match &opts.csv {
        Some(path) => {
            std::fs::write(path, &csv).expect("write CSV");
            eprintln!("CSV written to {path}");
        }
        None => print!("{csv}"),
    }
}
