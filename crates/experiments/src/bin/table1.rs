//! Regenerates Table I: degradation-factor statistics for scaled
//! synthetic, unscaled synthetic, and HPC2N(-like) workloads, all at the
//! 5-minute rescheduling penalty.
//!
//! To use the real HPC2N trace from the Parallel Workloads Archive, pass
//! `--swf /path/to/HPC2N-2002-2.2-cln.swf`.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::table1::{self, Table1Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let swf_text = opts
        .swf
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}")));
    eprintln!(
        "Table I: {} instances × {} jobs, {} loads, {} weeks ({}), penalty {}s, {} threads",
        opts.instances,
        opts.jobs,
        opts.loads.len(),
        opts.weeks,
        if swf_text.is_some() {
            "real SWF"
        } else {
            "HPC2N-like generator"
        },
        opts.penalty,
        opts.threads
    );
    let cfg = Table1Config {
        seeds: opts.instances,
        jobs: opts.jobs,
        loads: opts.loads.clone(),
        penalty: opts.penalty,
        seed0: opts.seed,
        threads: opts.threads,
        weeks: opts.weeks,
        hpc2n_jobs_per_week: opts.hpc2n_jobs_per_week,
        swf_text,
    };
    let data = table1::run(&cfg);
    let table = data.table();
    println!(
        "\nTable I — degradation factors (avg / std / max), penalty {}s",
        opts.penalty
    );
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
