//! Regenerates Figure 1: average stretch-degradation factor vs load.
//!
//! `--penalty 0` reproduces Figure 1(a), `--penalty 300` (default)
//! Figure 1(b). Paper scale: `--paper-scale --penalty 0`. Any registry
//! spec set can replace the paper's nine via `--algo`.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::fig1;
use dfrs_sched::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let which = if opts.penalty > 0.0 { "1(b)" } else { "1(a)" };
    eprintln!(
        "Figure {which}: {} instances × {} jobs × {} loads, penalty {}s, {} threads",
        opts.instances,
        opts.jobs,
        opts.loads.len(),
        opts.penalty,
        opts.threads
    );
    let data = fig1::run_specs(
        opts.instances,
        opts.jobs,
        &opts.loads,
        opts.specs_or(&Algorithm::ALL),
        opts.penalty,
        opts.seed,
        opts.threads,
    );
    let table = data.table();
    println!(
        "\nFigure {which} — average degradation factor vs load (penalty {}s)",
        opts.penalty
    );
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
