//! Regenerates the §V timing study: DYNMCB8 allocation compute time vs
//! number of jobs in the system, over unscaled synthetic traces.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::timing;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "Timing study: DYNMCB8 over {} unscaled traces × {} jobs",
        opts.instances, opts.jobs
    );
    let data = timing::run(opts.instances, opts.jobs, opts.seed);
    let table = data.table();
    println!("\n§V timing study — DYNMCB8 allocation compute time");
    println!("{}", table.render());
    println!(
        "({} observations; paper on 2010 hardware: ≤1 ms for ≤10 jobs, avg ≈ 0.25 s, max < 4.5 s)",
        data.observations
    );
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
