//! Regenerates Table II: preemption/migration bandwidth and occurrence
//! rates on high-load (≥ 0.7) scaled synthetic traces, 5-minute penalty.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::table2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Table II restricts to the high-load subset of the scaled traces.
    let high: Vec<f64> = opts
        .loads
        .iter()
        .copied()
        .filter(|l| *l >= 0.7 - 1e-9)
        .collect();
    let high = if high.is_empty() {
        vec![0.7, 0.8, 0.9]
    } else {
        high
    };
    eprintln!(
        "Table II: {} instances × {} jobs, loads {:?}, penalty {}s, {} threads",
        opts.instances, opts.jobs, high, opts.penalty, opts.threads
    );
    let data = table2::run(
        opts.instances,
        opts.jobs,
        &high,
        opts.penalty,
        opts.seed,
        opts.threads,
    );
    let table = data.table();
    println!(
        "\nTable II — preemption/migration costs, load ≥ 0.7, penalty {}s; avg (max)",
        opts.penalty
    );
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
