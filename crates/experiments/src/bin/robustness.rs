//! Cross-model robustness: the algorithm comparison on the Downey
//! workload family (see `dfrs_experiments::robustness`).

use dfrs_experiments::cli::Opts;
use dfrs_experiments::robustness;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "Robustness (Downey model): {} instances × {} jobs × {} loads, penalty {}s",
        opts.instances,
        opts.jobs,
        opts.loads.len(),
        opts.penalty
    );
    let data = robustness::run(
        opts.instances,
        opts.jobs,
        &opts.loads,
        opts.penalty,
        opts.seed,
        opts.threads,
    );
    let table = data.table();
    println!(
        "\nDegradation factors on the Downey workload family (penalty {}s)",
        opts.penalty
    );
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
