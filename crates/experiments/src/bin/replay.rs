//! Replays a real SWF trace (or, without `--swf`, a synthesized
//! HPC2N-like one) through every algorithm — or any `--algo` spec set —
//! and prints the outcome metrics: the quickest way to evaluate a
//! scheduler matrix on a trace that is not part of the paper's families.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::instances::{hpc2n_like_instances, hpc2n_swf_instances};
use dfrs_experiments::report::{f2, TextTable};
use dfrs_scenario::{Campaign, CellResult};
use dfrs_sched::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let instances = match &opts.swf {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            hpc2n_swf_instances(&text).expect("SWF parse/preprocess failed")
        }
        None => {
            eprintln!(
                "no --swf given; synthesizing {} HPC2N-like weeks ({} jobs/week)",
                opts.weeks, opts.hpc2n_jobs_per_week
            );
            hpc2n_like_instances(opts.weeks, opts.hpc2n_jobs_per_week, opts.seed)
        }
    };
    if instances.is_empty() {
        eprintln!("no instances to replay (empty trace or --weeks 0)");
        std::process::exit(2);
    }
    eprintln!(
        "replaying {} instance(s), penalty {}s",
        instances.len(),
        opts.penalty
    );

    let result = Campaign::from_specs(&instances, opts.specs_or(&Algorithm::ALL))
        .penalty(opts.penalty)
        .threads(opts.threads)
        .on_cell(|u| {
            if u.done == u.total || u.done % 16 == 0 {
                eprintln!("  {}/{} cells done", u.done, u.total);
            }
        })
        .run();
    let mut table = TextTable::new(vec![
        "algorithm",
        "max stretch (avg)",
        "mean stretch (avg)",
        "preempt/job",
        "migr/job",
    ]);
    for a in 0..result.specs.len() {
        let n = result.cells.len() as f64;
        let avg = |f: &dyn Fn(&CellResult) -> f64| {
            result.cells.iter().map(|row| f(&row[a])).sum::<f64>() / n
        };
        table.row(vec![
            result.cells[0][a].name.clone(),
            f2(avg(&|s| s.max_stretch)),
            f2(avg(&|s| s.mean_stretch)),
            f2(avg(&|s| s.preemptions_per_job())),
            f2(avg(&|s| s.migrations_per_job())),
        ]);
    }
    println!("\n{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
