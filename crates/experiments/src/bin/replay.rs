//! Replays a real SWF trace (or, without `--swf`, a synthesized
//! HPC2N-like one) through every algorithm and prints the outcome
//! metrics — the quickest way to evaluate the full matrix on a trace
//! that is not part of the paper's families.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::instances::{hpc2n_like_instances, hpc2n_swf_instances};
use dfrs_experiments::report::{f2, TextTable};
use dfrs_experiments::runner::run_matrix;
use dfrs_sched::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let instances = match &opts.swf {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            hpc2n_swf_instances(&text).expect("SWF parse/preprocess failed")
        }
        None => {
            eprintln!(
                "no --swf given; synthesizing {} HPC2N-like weeks ({} jobs/week)",
                opts.weeks, opts.hpc2n_jobs_per_week
            );
            hpc2n_like_instances(opts.weeks, opts.hpc2n_jobs_per_week, opts.seed)
        }
    };
    eprintln!(
        "replaying {} instance(s), penalty {}s",
        instances.len(),
        opts.penalty
    );

    let results = run_matrix(&instances, &Algorithm::ALL, opts.penalty, opts.threads);
    let mut table = TextTable::new(vec![
        "algorithm",
        "max stretch (avg)",
        "mean stretch (avg)",
        "preempt/job",
        "migr/job",
    ]);
    for (a, algo) in Algorithm::ALL.iter().enumerate() {
        let n = results.len() as f64;
        let avg = |f: &dyn Fn(&dfrs_experiments::RunSummary) -> f64| {
            results.iter().map(|row| f(&row[a])).sum::<f64>() / n
        };
        table.row(vec![
            algo.name().to_string(),
            f2(avg(&|s| s.max_stretch)),
            f2(avg(&|s| s.mean_stretch)),
            f2(avg(&|s| s.preemptions_per_job())),
            f2(avg(&|s| s.migrations_per_job())),
        ]);
    }
    println!("\n{}", table.render());
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
