//! The `availability` study binary: DFRS vs batch baselines on a
//! platform with node failure/repair churn (see
//! `dfrs_experiments::availability`).
//!
//! ```sh
//! cargo run --release -p dfrs_experiments --bin availability -- \
//!     --instances 3 --jobs 200 --mtbf 1209600 --mttr 3600
//! ```
//!
//! Runs every registered scheduler spec (or `--algo` subset) on the
//! same scaled Lublin workload twice — static cluster vs exponential
//! MTBF/MTTR churn — with full validation enabled, and prints the
//! per-spec degradation/restart/lost-work table. Deterministic given
//! `--seed`.

use dfrs_experiments::availability;
use dfrs_experiments::cli::Opts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let load = availability::study_load(&opts);
    if opts.loads.len() > 1 && opts.loads.as_slice() != dfrs_core::constants::SCALED_LOADS {
        eprintln!(
            "warning: the availability study runs one load point; using {load} and ignoring \
             the other --loads values"
        );
    }
    eprintln!(
        "availability study: {} instance(s) x {} jobs at load {load}, per-node MTBF {:.0} s / \
         MTTR {:.0} s, policy {:?}",
        opts.instances, opts.jobs, opts.mtbf_secs, opts.mttr_secs, opts.failure_policy
    );
    let study = availability::run(&opts);
    let table = study.table();
    println!("{}", table.render());
    println!(
        "({} node cluster; 'degr' = churn max stretch / static max stretch; \
         'down %' = mean fraction of nodes out of service)",
        study.nodes
    );
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
