//! The `drf` study binary: max-min yield vs max-min dominant share on
//! GPU-annotated workloads (see `dfrs_experiments::drf`).
//!
//! ```sh
//! cargo run --release -p dfrs_experiments --bin drf -- \
//!     --instances 3 --jobs 200 --gpu-frac 0.4
//! ```
//!
//! Runs the yield family (`dynmcb8`, `dynmcb8-per`) against the DRF
//! family (`dynmcb8-drf`, `dynmcb8-drf-per`) — or an `--algo` subset —
//! on the same scaled Lublin workload twice, CPU-only vs GPU-annotated,
//! with full validation enabled, and prints the per-spec degradation
//! table. Deterministic given `--seed`.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::{availability, drf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let load = availability::study_load(&opts);
    if opts.loads.len() > 1 && opts.loads.as_slice() != dfrs_core::constants::SCALED_LOADS {
        eprintln!(
            "warning: the drf study runs one load point; using {load} and ignoring the other \
             --loads values"
        );
    }
    eprintln!(
        "drf study: {} instance(s) x {} jobs at load {load}, gpu-frac {}",
        opts.instances, opts.jobs, opts.gpu_frac
    );
    let study = drf::run(&opts);
    let table = study.table();
    println!("{}", table.render());
    println!(
        "(gpu-frac {}; 'degr' = GPU-annotated max stretch / CPU-only max stretch)",
        study.gpu_frac
    );
    if let Some(path) = &opts.csv {
        std::fs::write(path, table.to_csv()).expect("write CSV");
        eprintln!("CSV written to {path}");
    }
}
