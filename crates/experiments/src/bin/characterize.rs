//! Characterizes the paper's three workload families (scaled synthetic,
//! unscaled synthetic, HPC2N-like) with the Section IV summary
//! statistics, so a change to the generators is visible before any
//! simulation is run.

use dfrs_experiments::cli::Opts;
use dfrs_experiments::instances::{hpc2n_like_instances, scaled_instances, unscaled_instances};
use dfrs_scenario::Scenario;
use dfrs_workload::profile;

fn report(family: &str, instances: &[Scenario]) {
    println!("\n=== {family} ({} instances) ===", instances.len());
    // Profile the first instance in full; the rest only as a load line,
    // which is where instances of one family differ.
    if let Some(first) = instances.first() {
        println!("[{}]\n{}", first.label, profile(&first.trace()).render());
    }
    for inst in instances.iter().skip(1) {
        let p = profile(&inst.trace());
        println!(
            "[{}] jobs {}, offered load {:.3}, serial {:.1}%, <1min {:.1}%",
            inst.label,
            p.jobs,
            p.offered_load,
            100.0 * p.serial_fraction,
            100.0 * p.short_fraction
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "Characterization: {} instances × {} jobs, {} loads, {} HPC2N-like weeks",
        opts.instances,
        opts.jobs,
        opts.loads.len(),
        opts.weeks
    );
    report(
        "unscaled synthetic",
        &unscaled_instances(opts.instances, opts.jobs, opts.seed),
    );
    report(
        "scaled synthetic",
        &scaled_instances(opts.instances.min(2), opts.jobs, &opts.loads, opts.seed),
    );
    report(
        "HPC2N-like",
        &hpc2n_like_instances(opts.weeks, opts.hpc2n_jobs_per_week, opts.seed),
    );
}
