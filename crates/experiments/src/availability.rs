//! The **availability study**: DFRS vs batch scheduling on a platform
//! whose nodes fail and get repaired.
//!
//! The paper's evaluation runs on an eternal cluster, so its
//! pause/migrate machinery is only ever exercised by the schedulers'
//! own choices. This study attaches a seeded per-node exponential
//! MTBF/MTTR churn model ([`dfrs_scenario::FailureModel::Exp`]) to the
//! scaled Lublin workload and runs **every registered scheduler spec**
//! twice — once on the static cluster, once under churn, with full
//! plan/invariant validation enabled — then tabulates what the churn
//! cost each policy: stretch degradation, failure-induced restarts,
//! lost virtual time, and the preemption/migration work spent adapting.
//!
//! The hypothesis under test (Casanova, Stillwell & Vivien 2011; Huber
//! et al. 2024): dynamic fractional schedulers absorb availability
//! churn — victims are repacked onto survivors within one event —
//! while rigid integral queues serialize behind re-entered jobs.

use dfrs_scenario::{Campaign, CampaignResult, FailureModel, Scenario, ScenarioBuilder};
use dfrs_sched::{SchedulerRegistry, SchedulerSpec};

use crate::cli::Opts;
use crate::report::{f2, TextTable};

/// One scheduler's row of the availability table.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// The spec (canonical string form).
    pub spec: SchedulerSpec,
    /// Scheduler display name.
    pub name: String,
    /// Mean (over instances) max bounded stretch on the static cluster.
    pub base_max_stretch: f64,
    /// Mean max bounded stretch under churn.
    pub churn_max_stretch: f64,
    /// `churn / base` — how much the churn degraded the headline metric.
    pub churn_degradation: f64,
    /// Mean failure-induced restarts per instance.
    pub restarts: f64,
    /// Mean virtual time lost to kills per instance (hours).
    pub lost_vt_hours: f64,
    /// Mean preemptions per instance under churn.
    pub preemptions: f64,
    /// Mean migrations per instance under churn.
    pub migrations: f64,
    /// Mean fraction of the cluster out of service over the makespan.
    pub unavailability: f64,
}

/// The study's full result: per-spec rows plus the raw matrices.
#[derive(Debug)]
pub struct AvailabilityStudy {
    /// One row per spec, in registry-key order.
    pub rows: Vec<AvailabilityRow>,
    /// The static-cluster matrix.
    pub baseline: CampaignResult,
    /// The churn matrix.
    pub churn: CampaignResult,
    /// Nodes in the simulated cluster (for unavailability).
    pub nodes: u32,
}

/// Every spec the registry knows, in sorted key order — the study's
/// column set tracks the registry, so user-registered schedulers would
/// appear automatically if run through [`run_with_registry`].
pub fn all_registry_specs(registry: &SchedulerRegistry) -> Vec<SchedulerSpec> {
    registry
        .keys()
        .iter()
        .map(|k| registry.parse(k).expect("registry keys parse"))
        .collect()
}

/// The churn-study scenario pair for one seed: identical workloads,
/// one static and one with the exponential failure model attached.
/// Validation is **on** in both: every plan of every scheduler is
/// checked against the availability constraints on every event.
fn scenario_pair(opts: &Opts, seed: u64, load: f64) -> (Scenario, Scenario) {
    let base = ScenarioBuilder::new()
        .label(format!("avail-s{seed}"))
        .lublin(opts.jobs)
        .load(load)
        .seed(seed)
        .validate(true)
        .build()
        .expect("the Lublin model always yields a valid trace");
    let churn = ScenarioBuilder::new()
        .label(format!("avail-churn-s{seed}"))
        .lublin(opts.jobs)
        .load(load)
        .seed(seed)
        .validate(true)
        .failures(FailureModel::exp(opts.mtbf_secs, opts.mttr_secs))
        .failure_policy(opts.failure_policy)
        .build()
        .expect("the Lublin model always yields a valid trace");
    debug_assert_eq!(base.jobs, churn.jobs, "failures never change the jobs");
    (base, churn)
}

/// Run the study with the built-in registry over `opts` (specs from
/// `--algo`, or every registered key when none were given).
pub fn run(opts: &Opts) -> AvailabilityStudy {
    run_with_registry(opts, SchedulerRegistry::builtin())
}

/// The single load point the study runs at: the first `--loads` value
/// when the flag was given (the binary warns when extra values are
/// dropped), or the paper's high-pressure 0.7 on the untouched default
/// grid — failures bite hardest when spare capacity is scarce.
pub fn study_load(opts: &Opts) -> f64 {
    if opts.loads.as_slice() == dfrs_core::constants::SCALED_LOADS {
        0.7
    } else {
        opts.loads[0]
    }
}

/// [`run`] against an explicit (possibly user-extended) registry.
pub fn run_with_registry(opts: &Opts, registry: SchedulerRegistry) -> AvailabilityStudy {
    let specs = if opts.algos.is_empty() {
        all_registry_specs(&registry)
    } else {
        opts.algos.clone()
    };
    let load = study_load(opts);
    let mut base_scenarios = Vec::new();
    let mut churn_scenarios = Vec::new();
    for s in 0..opts.instances {
        let (base, churn) = scenario_pair(opts, opts.seed + s, load);
        base_scenarios.push(base);
        churn_scenarios.push(churn);
    }
    let nodes = base_scenarios[0].cluster.nodes;

    let run_campaign = |scenarios: &[Scenario]| {
        Campaign::from_specs(scenarios, specs.clone())
            .penalty(opts.penalty)
            .threads(opts.threads)
            .migration_opt(opts.migration)
            .run()
    };
    let baseline = run_campaign(&base_scenarios);
    let churn = run_campaign(&churn_scenarios);

    let n = base_scenarios.len() as f64;
    let mean =
        |col: usize, result: &CampaignResult, f: &dyn Fn(&dfrs_scenario::CellResult) -> f64| {
            result.cells.iter().map(|row| f(&row[col])).sum::<f64>() / n
        };
    let rows = specs
        .iter()
        .enumerate()
        .map(|(a, spec)| {
            let base_max = mean(a, &baseline, &|c| c.max_stretch);
            let churn_max = mean(a, &churn, &|c| c.max_stretch);
            let unavail = mean(a, &churn, &|c| c.mean_unavailability(nodes));
            AvailabilityRow {
                spec: spec.clone(),
                name: churn.cells[0][a].name.clone(),
                base_max_stretch: base_max,
                churn_max_stretch: churn_max,
                churn_degradation: if base_max > 0.0 {
                    churn_max / base_max
                } else {
                    0.0
                },
                restarts: mean(a, &churn, &|c| c.restart_count as f64),
                lost_vt_hours: mean(a, &churn, &|c| c.lost_virtual_seconds / 3_600.0),
                preemptions: mean(a, &churn, &|c| c.preemption_count as f64),
                migrations: mean(a, &churn, &|c| c.migration_count as f64),
                unavailability: unavail,
            }
        })
        .collect();
    AvailabilityStudy {
        rows,
        baseline,
        churn,
        nodes,
    }
}

impl AvailabilityStudy {
    /// Render the per-spec table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "Scheduler",
            "base max S",
            "churn max S",
            "degr",
            "restarts",
            "lost vt (h)",
            "pmtn",
            "migr",
            "down %",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                f2(r.base_max_stretch),
                f2(r.churn_max_stretch),
                f2(r.churn_degradation),
                f2(r.restarts),
                f2(r.lost_vt_hours),
                f2(r.preemptions),
                f2(r.migrations),
                f2(r.unavailability * 100.0),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Opts {
        Opts {
            instances: 1,
            jobs: 40,
            seed: 3,
            threads: 2,
            penalty: 0.0,
            // Aggressive churn so a 40-job trace is actually struck.
            mtbf_secs: 40_000.0,
            mttr_secs: 2_000.0,
            ..Opts::default()
        }
    }

    #[test]
    fn study_covers_every_registry_spec_and_is_deterministic() {
        let opts = tiny_opts();
        let a = run(&opts);
        let registry = SchedulerRegistry::builtin();
        assert_eq!(a.rows.len(), registry.keys().len());
        for row in &a.rows {
            assert!(row.base_max_stretch >= 1.0, "{}", row.name);
            assert!(row.churn_max_stretch >= 1.0, "{}", row.name);
        }
        // Churn actually happened and someone was struck.
        assert!(a.rows.iter().any(|r| r.unavailability > 0.0));
        let b = run(&opts);
        assert_eq!(a.churn.fingerprint(), b.churn.fingerprint());
        assert_eq!(a.baseline.fingerprint(), b.baseline.fingerprint());
    }

    #[test]
    fn explicit_algo_subset_is_honored() {
        let mut opts = tiny_opts();
        opts.algos = vec!["fcfs".parse().unwrap(), "greedy-pmtn".parse().unwrap()];
        let study = run(&opts);
        assert_eq!(study.rows.len(), 2);
        assert_eq!(study.rows[0].name, "FCFS");
        let rendered = study.table().render();
        assert!(rendered.contains("restarts"), "{rendered}");
    }
}
