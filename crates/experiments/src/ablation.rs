//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. **Packer** — MCB8 vs first-fit vs best-fit inside the yield binary
//!    search (how much does balance-aware packing buy?);
//! 2. **Priority exponent** — the paper's `vt²` denominator vs plain
//!    `vt` (the paper reports the square is decisively better);
//! 3. **Period** — T ∈ {60, 600, 3600} for the periodic repacker under
//!    the 5-minute penalty (the paper states 600 matches 60's quality at
//!    3600's overhead).
//!
//! Every variant is a registry [`SchedulerSpec`] — no hand-wired
//! factory closures — so the same sweeps run from any binary via
//! `--algo`.

use dfrs_core::OnlineStats;
use dfrs_scenario::{Campaign, Scenario};
use dfrs_sched::SchedulerSpec;

use crate::instances::scaled_instances;
use crate::report::TextTable;

/// Aggregated ablation rows.
#[derive(Debug, Clone)]
pub struct AblationData {
    /// Table title.
    pub title: String,
    /// `(label, avg max stretch, avg mean stretch, avg moved GB)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Run `(label, spec)` variants over the instances and aggregate the
/// stretch/data-movement means per variant.
pub fn aggregate(
    title: &str,
    instances: &[Scenario],
    variants: &[(&str, &str)],
    penalty: f64,
    threads: usize,
) -> AblationData {
    let specs: Vec<SchedulerSpec> = variants
        .iter()
        .map(|(label, s)| {
            s.parse()
                .unwrap_or_else(|e| panic!("ablation variant {label}: {e}"))
        })
        .collect();
    let result = Campaign::from_specs(instances, specs)
        .penalty(penalty)
        .threads(threads)
        .run();
    let mut rows = Vec::with_capacity(variants.len());
    for (b, (label, _)) in variants.iter().enumerate() {
        let mut max_s = OnlineStats::new();
        let mut mean_s = OnlineStats::new();
        let mut moved = OnlineStats::new();
        for row in &result.cells {
            max_s.push(row[b].max_stretch);
            mean_s.push(row[b].mean_stretch);
            moved.push(row[b].moved_gb());
        }
        rows.push((label.to_string(), max_s.mean(), mean_s.mean(), moved.mean()));
    }
    AblationData {
        title: title.to_string(),
        rows,
    }
}

/// Packer ablation on the periodic repacker.
pub fn packer_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    aggregate(
        "Packer inside the yield search (DynMCB8-asap-per 600)",
        &instances,
        &[
            ("mcb8", "dynmcb8-asap-per:t=600,packer=mcb8"),
            ("first-fit", "dynmcb8-asap-per:t=600,packer=first-fit"),
            ("best-fit", "dynmcb8-asap-per:t=600,packer=best-fit"),
        ],
        300.0,
        threads,
    )
}

/// Priority-exponent ablation on GREEDY-PMTN.
pub fn priority_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    aggregate(
        "Priority exponent (Greedy-pmtn)",
        &instances,
        &[
            ("flow/vt^2 (paper)", "greedy-pmtn:exponent=2"),
            ("flow/vt (no square)", "greedy-pmtn:exponent=1"),
        ],
        300.0,
        threads,
    )
}

/// Period sweep on the periodic repacker, with the 5-minute penalty.
pub fn period_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    aggregate(
        "Scheduling period (DynMCB8-per)",
        &instances,
        &[
            ("T=60", "dynmcb8-per:t=60"),
            ("T=600 (paper)", "dynmcb8-per:t=600"),
            ("T=3600", "dynmcb8-per:t=3600"),
        ],
        300.0,
        threads,
    )
}

impl AblationData {
    /// Render the rows.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "variant",
            "avg max stretch",
            "avg mean stretch",
            "avg moved GB",
        ]);
        for (name, max_s, mean_s, moved) in &self.rows {
            t.row(vec![
                name.clone(),
                format!("{max_s:.2}"),
                format!("{mean_s:.2}"),
                format!("{moved:.1}"),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packer_ablation_runs_and_mcb8_is_competitive() {
        let data = packer_ablation(2, 40, 0.8, 21, 2);
        assert_eq!(data.rows.len(), 3);
        let mcb8 = data.rows[0].1;
        let worst = data.rows.iter().map(|r| r.1).fold(0.0, f64::max);
        assert!(mcb8 <= worst + 1e-9);
        assert!(data.table().render().contains("mcb8"));
    }

    #[test]
    fn priority_ablation_runs() {
        let data = priority_ablation(2, 40, 0.8, 22, 2);
        assert_eq!(data.rows.len(), 2);
        for (_, max_s, mean_s, _) in &data.rows {
            assert!(*max_s >= 1.0 && *mean_s >= 1.0);
        }
    }

    #[test]
    fn period_ablation_monotone_overhead() {
        let data = period_ablation(1, 40, 0.8, 23, 2);
        // Longer periods move (weakly) less data.
        let moved: Vec<f64> = data.rows.iter().map(|r| r.3).collect();
        assert!(
            moved[0] + 1e-9 >= moved[2],
            "T=60 {} vs T=3600 {}",
            moved[0],
            moved[2]
        );
    }
}
