//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. **Packer** — MCB8 vs first-fit vs best-fit inside the yield binary
//!    search (how much does balance-aware packing buy?);
//! 2. **Priority exponent** — the paper's `vt²` denominator vs plain
//!    `vt` (the paper reports the square is decisively better);
//! 3. **Period** — T ∈ {60, 600, 3600} for the periodic repacker under
//!    the 5-minute penalty (the paper states 600 matches 60's quality at
//!    3600's overhead).

use dfrs_core::OnlineStats;
use dfrs_sched::dynmcb8::PackerChoice;
use dfrs_sched::{DynMcb8AsapPer, DynMcb8Per, GreedyPmtn};
use dfrs_sim::Scheduler;

use crate::instances::scaled_instances;
use crate::report::TextTable;
use crate::runner::{run_matrix_with, SchedulerBuilder};

/// Aggregated ablation rows: `(variant, avg max stretch, avg mean
/// stretch, avg moves/job-ish aggregate)`.
#[derive(Debug, Clone)]
pub struct AblationData {
    /// Table title.
    pub title: String,
    /// `(name, avg max stretch, avg mean stretch, avg moved GB)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

fn aggregate(
    title: &str,
    instances: &[crate::Instance],
    builders: &[SchedulerBuilder<'_>],
    penalty: f64,
    threads: usize,
) -> AblationData {
    let results = run_matrix_with(instances, builders, penalty, threads);
    let mut rows = Vec::with_capacity(builders.len());
    for b in 0..builders.len() {
        let mut max_s = OnlineStats::new();
        let mut mean_s = OnlineStats::new();
        let mut moved = OnlineStats::new();
        for row in &results {
            max_s.push(row[b].max_stretch);
            mean_s.push(row[b].mean_stretch);
            moved.push(row[b].moved_gb);
        }
        rows.push((
            builders[b].0.to_string(),
            max_s.mean(),
            mean_s.mean(),
            moved.mean(),
        ));
    }
    AblationData {
        title: title.to_string(),
        rows,
    }
}

/// Packer ablation on the periodic repacker.
pub fn packer_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    let mcb8 = || -> Box<dyn Scheduler> {
        Box::new(DynMcb8AsapPer::with_packer(600.0, PackerChoice::Mcb8))
    };
    let ffd = || -> Box<dyn Scheduler> {
        Box::new(DynMcb8AsapPer::with_packer(600.0, PackerChoice::FirstFit))
    };
    let bfd = || -> Box<dyn Scheduler> {
        Box::new(DynMcb8AsapPer::with_packer(600.0, PackerChoice::BestFit))
    };
    let builders: Vec<SchedulerBuilder> =
        vec![("mcb8", &mcb8), ("first-fit", &ffd), ("best-fit", &bfd)];
    aggregate(
        "Packer inside the yield search (DynMCB8-asap-per 600)",
        &instances,
        &builders,
        300.0,
        threads,
    )
}

/// Priority-exponent ablation on GREEDY-PMTN.
pub fn priority_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    let sq = || -> Box<dyn Scheduler> { Box::new(GreedyPmtn::new()) };
    let lin = || -> Box<dyn Scheduler> { Box::new(GreedyPmtn::with_priority_exponent(1.0)) };
    let builders: Vec<SchedulerBuilder> =
        vec![("flow/vt^2 (paper)", &sq), ("flow/vt (no square)", &lin)];
    aggregate(
        "Priority exponent (Greedy-pmtn)",
        &instances,
        &builders,
        300.0,
        threads,
    )
}

/// Period sweep on the periodic repacker, with the 5-minute penalty.
pub fn period_ablation(
    seeds: u64,
    jobs: usize,
    load: f64,
    seed0: u64,
    threads: usize,
) -> AblationData {
    let instances = scaled_instances(seeds, jobs, &[load], seed0);
    let t60 = || -> Box<dyn Scheduler> { Box::new(DynMcb8Per::with_period(60.0)) };
    let t600 = || -> Box<dyn Scheduler> { Box::new(DynMcb8Per::with_period(600.0)) };
    let t3600 = || -> Box<dyn Scheduler> { Box::new(DynMcb8Per::with_period(3600.0)) };
    let builders: Vec<SchedulerBuilder> =
        vec![("T=60", &t60), ("T=600 (paper)", &t600), ("T=3600", &t3600)];
    aggregate(
        "Scheduling period (DynMCB8-per)",
        &instances,
        &builders,
        300.0,
        threads,
    )
}

impl AblationData {
    /// Render the rows.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "variant",
            "avg max stretch",
            "avg mean stretch",
            "avg moved GB",
        ]);
        for (name, max_s, mean_s, moved) in &self.rows {
            t.row(vec![
                name.clone(),
                format!("{max_s:.2}"),
                format!("{mean_s:.2}"),
                format!("{moved:.1}"),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packer_ablation_runs_and_mcb8_is_competitive() {
        let data = packer_ablation(2, 40, 0.8, 21, 2);
        assert_eq!(data.rows.len(), 3);
        let mcb8 = data.rows[0].1;
        let worst = data.rows.iter().map(|r| r.1).fold(0.0, f64::max);
        assert!(mcb8 <= worst + 1e-9);
        assert!(data.table().render().contains("mcb8"));
    }

    #[test]
    fn priority_ablation_runs() {
        let data = priority_ablation(2, 40, 0.8, 22, 2);
        assert_eq!(data.rows.len(), 2);
        for (_, max_s, mean_s, _) in &data.rows {
            assert!(*max_s >= 1.0 && *mean_s >= 1.0);
        }
    }

    #[test]
    fn period_ablation_monotone_overhead() {
        let data = period_ablation(1, 40, 0.8, 23, 2);
        // Longer periods move (weakly) less data.
        let moved: Vec<f64> = data.rows.iter().map(|r| r.3).collect();
        assert!(
            moved[0] + 1e-9 >= moved[2],
            "T=60 {} vs T=3600 {}",
            moved[0],
            moved[2]
        );
    }
}
