//! Workload scenario construction for the paper's three experiment
//! families, on top of [`dfrs_scenario::ScenarioBuilder`].
//!
//! * **Scaled synthetic** — `seeds` Lublin base traces × the nine loads
//!   0.1–0.9 (Section IV-C: 100 × 9 = 900 in the paper);
//! * **Unscaled synthetic** — the base traces as generated;
//! * **HPC2N-like** — one-week segments from the synthetic HPC2N
//!   generator (or, when a real SWF file is supplied, from that file).

use dfrs_core::constants::SCALED_LOADS;
use dfrs_scenario::{Scenario, ScenarioBuilder, ScenarioError};

/// One Lublin base trace (seeded), annotated per the paper.
pub fn synthetic_base(seed: u64, jobs: usize) -> Scenario {
    ScenarioBuilder::new()
        .lublin(jobs)
        .seed(seed)
        .build()
        .expect("the Lublin model always yields a valid trace")
}

/// The unscaled synthetic family: `seeds` base traces.
pub fn unscaled_instances(seeds: u64, jobs: usize, seed0: u64) -> Vec<Scenario> {
    (0..seeds)
        .map(|s| {
            ScenarioBuilder::new()
                .label(format!("unscaled-s{s}"))
                .lublin(jobs)
                .seed(seed0 + s)
                .build()
                .expect("the Lublin model always yields a valid trace")
        })
        .collect()
}

/// The scaled synthetic family: each base trace rescaled to each of
/// `loads` (defaults to the paper's 0.1–0.9).
pub fn scaled_instances(seeds: u64, jobs: usize, loads: &[f64], seed0: u64) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(seeds as usize * loads.len());
    for s in 0..seeds {
        // Generate each base trace once and rescale per load — the
        // paper's construction, and 9× cheaper than regenerating at
        // every grid point.
        let base = synthetic_base(seed0 + s, jobs);
        for &load in loads {
            let mut scaled = base.scaled_to(load).expect("nonzero span");
            scaled.label = format!("scaled-s{s}-load{load:.1}");
            out.push(scaled);
        }
    }
    out
}

/// The paper's load grid.
pub fn paper_loads() -> Vec<f64> {
    SCALED_LOADS.to_vec()
}

/// HPC2N-like one-week segments (the documented stand-in for the real
/// 182-week trace; see `dfrs_workload::hpc2n`). `jobs_per_week` scales
/// the weekly volume (the real trace averages ≈ 1,100; smaller values
/// make laptop-scale runs cheap).
pub fn hpc2n_like_instances(weeks: u32, jobs_per_week: f64, seed: u64) -> Vec<Scenario> {
    ScenarioBuilder::new()
        .label("hpc2n")
        .hpc2n_like(weeks, jobs_per_week)
        .seed(seed)
        .build_all()
        .expect("the HPC2N-like generator always yields valid traces")
}

/// One-week segments from a real SWF file processed by the paper's
/// HPC2N rules.
pub fn hpc2n_swf_instances(swf_text: &str) -> Result<Vec<Scenario>, ScenarioError> {
    ScenarioBuilder::new()
        .label("hpc2n-swf")
        .swf_text(swf_text)
        .build_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_instances_hit_their_loads() {
        let insts = scaled_instances(2, 60, &[0.3, 0.7], 0);
        assert_eq!(insts.len(), 4);
        for inst in &insts {
            let measured = inst.trace().offered_load();
            let target = inst.load.unwrap();
            assert!(
                (measured - target).abs() < 1e-6,
                "{}: {measured}",
                inst.label
            );
        }
    }

    #[test]
    fn same_seed_same_instance() {
        let a = unscaled_instances(1, 50, 7);
        let b = unscaled_instances(1, 50, 7);
        assert_eq!(a[0].jobs, b[0].jobs);
    }

    #[test]
    fn scaled_instances_share_job_mix_across_loads() {
        let insts = scaled_instances(1, 40, &[0.2, 0.8], 3);
        let mix = |i: &Scenario| -> Vec<(u32, f64)> {
            i.jobs
                .iter()
                .map(|j| (j.tasks, j.oracle_runtime()))
                .collect()
        };
        assert_eq!(
            mix(&insts[0]),
            mix(&insts[1]),
            "same jobs, different arrival spacing"
        );
    }

    #[test]
    fn hpc2n_like_segments_are_week_bounded() {
        let insts = hpc2n_like_instances(3, 300.0, 1);
        assert!(insts.len() >= 2);
        for i in &insts {
            assert_eq!(i.cluster.nodes, 120);
            for j in &i.jobs {
                assert!(j.submit_time < dfrs_workload::trace::WEEK_SECS + 1.0);
            }
        }
    }

    #[test]
    fn swf_instances_pipeline_works() {
        let swf = "1 0 0 3600 4 -1 209715 4 -1 -1 1 1 1 -1 1 -1 -1 -1\n\
                   2 700000 0 60 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
        let insts = hpc2n_swf_instances(swf).unwrap();
        assert_eq!(insts.len(), 2, "two weeks, one job each");
    }
}
