//! Workload instance construction for the paper's three experiment
//! families.
//!
//! * **Scaled synthetic** — `seeds` Lublin base traces × the nine loads
//!   0.1–0.9 (Section IV-C: 100 × 9 = 900 in the paper);
//! * **Unscaled synthetic** — the base traces as generated;
//! * **HPC2N-like** — one-week segments from the synthetic HPC2N
//!   generator (or, when a real SWF file is supplied, from that file).

use dfrs_core::constants::SCALED_LOADS;
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_workload::{Annotator, Hpc2nLikeGenerator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One simulatable workload.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable identity, e.g. `synthetic-s3-load0.5`.
    pub label: String,
    /// Target offered load (scaled family only).
    pub load: Option<f64>,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Jobs, sorted by submission with dense ids.
    pub jobs: Vec<JobSpec>,
}

impl Instance {
    fn from_trace(label: String, load: Option<f64>, trace: &Trace) -> Self {
        Instance {
            label,
            load,
            cluster: trace.cluster,
            jobs: trace.jobs().to_vec(),
        }
    }
}

/// One Lublin base trace (seeded), annotated per the paper.
pub fn synthetic_base(seed: u64, jobs: usize) -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(jobs, &mut rng);
    let annotated = Annotator::new(cluster)
        .annotate(&raws, &mut rng)
        .expect("model output is always annotatable");
    Trace::new(cluster, annotated).expect("model sizes fit the cluster")
}

/// The unscaled synthetic family: `seeds` base traces.
pub fn unscaled_instances(seeds: u64, jobs: usize, seed0: u64) -> Vec<Instance> {
    (0..seeds)
        .map(|s| {
            let trace = synthetic_base(seed0 + s, jobs);
            Instance::from_trace(format!("unscaled-s{s}"), None, &trace)
        })
        .collect()
}

/// The scaled synthetic family: each base trace rescaled to each of
/// `loads` (defaults to the paper's 0.1–0.9).
pub fn scaled_instances(seeds: u64, jobs: usize, loads: &[f64], seed0: u64) -> Vec<Instance> {
    let mut out = Vec::with_capacity(seeds as usize * loads.len());
    for s in 0..seeds {
        let base = synthetic_base(seed0 + s, jobs);
        for &load in loads {
            let scaled = base.scale_to_load(load).expect("nonzero span");
            out.push(Instance::from_trace(
                format!("scaled-s{s}-load{load:.1}"),
                Some(load),
                &scaled,
            ));
        }
    }
    out
}

/// The paper's load grid.
pub fn paper_loads() -> Vec<f64> {
    SCALED_LOADS.to_vec()
}

/// HPC2N-like one-week segments (the documented stand-in for the real
/// 182-week trace; see `dfrs_workload::hpc2n`). `jobs_per_week` scales
/// the weekly volume (the real trace averages ≈ 1,100; smaller values
/// make laptop-scale runs cheap).
pub fn hpc2n_like_instances(weeks: u32, jobs_per_week: f64, seed: u64) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let gen = Hpc2nLikeGenerator {
        jobs_per_week,
        ..Hpc2nLikeGenerator::default()
    };
    gen.generate_weeks(weeks, &mut rng)
        .iter()
        .enumerate()
        .map(|(i, t)| Instance::from_trace(format!("hpc2n-week{i}"), None, t))
        .collect()
}

/// One-week segments from a real SWF file processed by the paper's
/// HPC2N rules.
pub fn hpc2n_swf_instances(swf_text: &str) -> Result<Vec<Instance>, dfrs_core::CoreError> {
    let (_, records) = dfrs_workload::parse_swf(swf_text)?;
    let trace = dfrs_workload::hpc2n_preprocess(&records, ClusterSpec::hpc2n());
    Ok(trace
        .split_weeks()
        .iter()
        .enumerate()
        .map(|(i, t)| Instance::from_trace(format!("hpc2n-swf-week{i}"), None, t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_instances_hit_their_loads() {
        let insts = scaled_instances(2, 60, &[0.3, 0.7], 0);
        assert_eq!(insts.len(), 4);
        for inst in &insts {
            let t = Trace::new(inst.cluster, inst.jobs.clone()).unwrap();
            let measured = t.offered_load();
            let target = inst.load.unwrap();
            assert!(
                (measured - target).abs() < 1e-6,
                "{}: {measured}",
                inst.label
            );
        }
    }

    #[test]
    fn same_seed_same_instance() {
        let a = unscaled_instances(1, 50, 7);
        let b = unscaled_instances(1, 50, 7);
        assert_eq!(a[0].jobs, b[0].jobs);
    }

    #[test]
    fn scaled_instances_share_job_mix_across_loads() {
        let insts = scaled_instances(1, 40, &[0.2, 0.8], 3);
        let mix = |i: &Instance| -> Vec<(u32, f64)> {
            i.jobs
                .iter()
                .map(|j| (j.tasks, j.oracle_runtime()))
                .collect()
        };
        assert_eq!(
            mix(&insts[0]),
            mix(&insts[1]),
            "same jobs, different arrival spacing"
        );
    }

    #[test]
    fn hpc2n_like_segments_are_week_bounded() {
        let insts = hpc2n_like_instances(3, 300.0, 1);
        assert!(insts.len() >= 2);
        for i in &insts {
            assert_eq!(i.cluster.nodes, 120);
            for j in &i.jobs {
                assert!(j.submit_time < dfrs_workload::trace::WEEK_SECS + 1.0);
            }
        }
    }

    #[test]
    fn swf_instances_pipeline_works() {
        let swf = "1 0 0 3600 4 -1 209715 4 -1 -1 1 1 1 -1 1 -1 -1 -1\n\
                   2 700000 0 60 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
        let insts = hpc2n_swf_instances(swf).unwrap();
        assert_eq!(insts.len(), 2, "two weeks, one job each");
    }
}
