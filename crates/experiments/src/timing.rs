//! The §V timing study: wall-clock cost of computing one `DYNMCB8`
//! allocation as a function of the number of jobs in the system.
//!
//! The paper instrumented the scheduler over the 100 unscaled traces
//! (197,808 observations on a 3.2 GHz Xeon): ≤ 0.001 s for ≤ 10 jobs,
//! average ≈ 0.25 s overall, maximum < 4.5 s. Absolute numbers on modern
//! hardware are (much) lower; the shape — growth with the job count, and
//! feasibility relative to inter-arrival times — is the reproducible
//! claim.

use dfrs_core::OnlineStats;
use dfrs_sched::Algorithm;
use dfrs_sim::{DecisionSample, SimConfig};

use crate::instances::unscaled_instances;
use crate::report::TextTable;

/// Decision-time statistics bucketed by jobs-in-system.
#[derive(Debug, Clone)]
pub struct TimingData {
    /// `(bucket upper bound, stats)` — e.g. bucket 10 covers 1–10 jobs.
    pub buckets: Vec<(u32, OnlineStats)>,
    /// All observations pooled.
    pub overall: OnlineStats,
    /// Total observations.
    pub observations: u64,
}

/// Run `DYNMCB8` over unscaled traces and collect per-decision timings.
pub fn run(seeds: u64, jobs: usize, seed0: u64) -> TimingData {
    let cfg = SimConfig {
        record_decisions: true,
        ..SimConfig::default()
    };
    let mut samples: Vec<DecisionSample> = Vec::new();
    for inst in unscaled_instances(seeds, jobs, seed0) {
        let out = inst
            .with_config(cfg.clone())
            .run_scheduler(Algorithm::DynMcb8.build().as_mut());
        samples.extend(out.decisions);
    }
    let bounds = [10u32, 20, 40, 80, 160, u32::MAX];
    let mut buckets: Vec<(u32, OnlineStats)> =
        bounds.iter().map(|&b| (b, OnlineStats::new())).collect();
    let mut overall = OnlineStats::new();
    for s in &samples {
        overall.push(s.wall_secs);
        for (bound, stats) in buckets.iter_mut() {
            if s.jobs_in_system <= *bound {
                stats.push(s.wall_secs);
                break;
            }
        }
    }
    TimingData {
        buckets,
        overall,
        observations: samples.len() as u64,
    }
}

impl TimingData {
    /// Render as a table (seconds).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["jobs in system", "count", "avg s", "max s"]);
        let mut lo = 0u32;
        for (bound, s) in &self.buckets {
            if s.count() == 0 {
                lo = bound.saturating_add(1);
                continue;
            }
            let label = if *bound == u32::MAX {
                format!("> {}", lo.saturating_sub(1))
            } else {
                format!("{}-{}", lo, bound)
            };
            t.row(vec![
                label,
                s.count().to_string(),
                format!("{:.6}", s.mean()),
                format!("{:.6}", s.max()),
            ]);
            lo = bound.saturating_add(1);
        }
        t.row(vec![
            "overall".to_string(),
            self.overall.count().to_string(),
            format!("{:.6}", self.overall.mean()),
            format!("{:.6}", self.overall.max()),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_observations_and_buckets() {
        let data = run(1, 40, 5);
        // Submissions + completions ≈ 2 × jobs decisions.
        assert!(
            data.observations >= 60,
            "{} observations",
            data.observations
        );
        assert_eq!(data.overall.count(), data.observations);
        let bucketed: u64 = data.buckets.iter().map(|(_, s)| s.count()).sum();
        assert_eq!(bucketed, data.observations);
        assert!(data.overall.max() < 10.0, "pathological decision time");
        let text = data.table().render();
        assert!(text.contains("overall"));
    }
}
