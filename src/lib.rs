//! # dfrs — Dynamic Fractional Resource Scheduling for HPC workloads
//!
//! A from-scratch reproduction of Stillwell, Vivien & Casanova,
//! *"Dynamic Fractional Resource Scheduling for HPC Workloads"*, IEEE
//! IPDPS 2010. This meta-crate re-exports the whole workspace; see the
//! README for a guided tour and DESIGN.md for the system inventory.
//!
//! ```
//! use dfrs::core::{ClusterSpec, JobSpec};
//! use dfrs::core::ids::JobId;
//! use dfrs::sched::Algorithm;
//! use dfrs::sim::{simulate, SimConfig};
//!
//! // Two memory-light jobs that batch scheduling would serialize share
//! // the cluster under DFRS and both finish in dedicated time.
//! let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
//! let jobs = vec![
//!     JobSpec::new(JobId(0), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
//!     JobSpec::new(JobId(1), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
//! ];
//! let out = simulate(
//!     cluster,
//!     &jobs,
//!     Algorithm::GreedyPmtn.build().as_mut(),
//!     &SimConfig::default(),
//! );
//! assert_eq!(out.max_stretch, 1.0);
//! ```

pub use dfrs_core as core;
pub use dfrs_experiments as experiments;
pub use dfrs_packing as packing;
pub use dfrs_sched as sched;
pub use dfrs_sim as sim;
pub use dfrs_workload as workload;
