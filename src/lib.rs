//! # dfrs — Dynamic Fractional Resource Scheduling for HPC workloads
//!
//! A from-scratch reproduction of Stillwell, Vivien & Casanova,
//! *"Dynamic Fractional Resource Scheduling for HPC Workloads"*, IEEE
//! IPDPS 2010. This meta-crate re-exports the whole workspace; see the
//! README for a guided tour and DESIGN.md for the system inventory and
//! the three-layer experiment API (registry → scenario → campaign).
//!
//! The front door is [`ScenarioBuilder`]: pick a workload source, a
//! cluster, and engine knobs, then run any scheduler the
//! [`SchedulerRegistry`] knows by its spec string.
//!
//! ```
//! use dfrs::core::ids::JobId;
//! use dfrs::core::{ClusterSpec, JobSpec};
//! use dfrs::ScenarioBuilder;
//!
//! // Two memory-light jobs that batch scheduling would serialize share
//! // the cluster under DFRS and both finish in dedicated time.
//! let scenario = ScenarioBuilder::new()
//!     .cluster(ClusterSpec::new(2, 4, 8.0).unwrap())
//!     .jobs(vec![
//!         JobSpec::new(JobId(0), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
//!         JobSpec::new(JobId(1), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
//!     ])
//!     .build()
//!     .unwrap();
//! assert_eq!(scenario.run("easy").unwrap().max_stretch, 2.0);
//! assert_eq!(scenario.run("greedy-pmtn").unwrap().max_stretch, 1.0);
//! ```
//!
//! A [`Campaign`] runs whole `scenarios × specs` matrices in parallel
//! with deterministic results:
//!
//! ```
//! use dfrs::{Campaign, ScenarioBuilder};
//!
//! let scenarios = vec![ScenarioBuilder::new()
//!     .lublin(30) // 30 jobs from the Lublin-Feitelson model
//!     .load(0.7) // rescaled to offered load 0.7
//!     .seed(42)
//!     .build()
//!     .unwrap()];
//! let result = Campaign::new(&scenarios, ["easy", "dynmcb8-per:t=300"])
//!     .unwrap()
//!     .penalty(300.0)
//!     .threads(4)
//!     .run();
//! assert!(result.cells[0][0].max_stretch >= result.cells[0][1].max_stretch);
//! ```

pub use dfrs_core as core;
pub use dfrs_experiments as experiments;
pub use dfrs_packing as packing;
pub use dfrs_scenario as scenario;
pub use dfrs_sched as sched;
pub use dfrs_sim as sim;
pub use dfrs_workload as workload;

pub use dfrs_scenario::{
    Campaign, CampaignResult, CellResult, CellUpdate, FailureModel, Scenario, ScenarioBuilder,
    ScenarioError, WorkloadSource,
};
pub use dfrs_sched::{Algorithm, SchedulerRegistry, SchedulerSpec, SpecError};
pub use dfrs_sim::{FailurePolicy, MigrationMode, NodeEvent};
