//! Integration pins for platform dynamics (the acceptance criteria of
//! the availability tentpole):
//!
//! * every registered scheduler spec completes a churn scenario with
//!   full plan/invariant validation enabled — no validation errors, no
//!   stranded jobs;
//! * the availability study is deterministic: same seed, same table;
//! * `FailureModel::None` (the default) leaves configs event-free, so
//!   the golden-trace suite's scenarios are untouched by construction.

use dfrs::{Campaign, FailureModel, FailurePolicy, ScenarioBuilder, SchedulerRegistry};

/// A small but genuinely churned scenario: load 0.7 Lublin trace with
/// several failures striking during execution.
fn churn_scenario(policy: FailurePolicy) -> dfrs::Scenario {
    ScenarioBuilder::new()
        .label("churn-pin")
        .lublin(50)
        .load(0.7)
        .seed(11)
        .validate(true)
        .failures(FailureModel::exp(60_000.0, 3_000.0))
        .failure_policy(policy)
        .build()
        .expect("churn scenario builds")
}

#[test]
fn every_registry_spec_completes_a_churn_scenario_under_validation() {
    for policy in [FailurePolicy::Restart, FailurePolicy::PausePreserve] {
        let scenario = churn_scenario(policy);
        assert!(
            !scenario.config.node_events.is_empty(),
            "the churn model produced no events"
        );
        let registry = SchedulerRegistry::builtin();
        for key in registry.keys() {
            // `validate: true` panics on any invalid plan or invariant
            // violation, so completion alone is the assertion.
            let out = scenario.run(&key).expect("registry specs build");
            assert_eq!(out.records.len(), 50, "{key} under {policy:?}");
            match policy {
                FailurePolicy::Restart => {
                    assert_eq!(out.preemption_gb, out.preemption_gb.abs());
                    assert!(out.lost_virtual_seconds >= 0.0, "{key}: negative lost work");
                }
                FailurePolicy::PausePreserve => {
                    assert_eq!(out.restart_count, 0, "{key}: preserve never kills");
                    assert_eq!(out.lost_virtual_seconds, 0.0);
                }
            }
        }
    }
}

#[test]
fn churn_campaigns_are_deterministic_across_threads() {
    let scenarios = vec![churn_scenario(FailurePolicy::Restart)];
    let specs = [
        "fcfs",
        "easy",
        "greedy-pmtn",
        "dynmcb8",
        "dynmcb8-per:t=300",
    ];
    let serial = Campaign::new(&scenarios, specs).unwrap().threads(1).run();
    let parallel = Campaign::new(&scenarios, specs).unwrap().threads(4).run();
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
    // Failures actually happened and are visible in the new fields.
    assert!(serial.cells[0].iter().all(|c| c.down_node_seconds > 0.0));
    assert!(serial.cells[0].iter().any(|c| c.restart_count > 0));
}

#[test]
fn failure_free_default_attaches_no_events() {
    // The golden-trace scenarios rely on this: with no failure model,
    // the config carries no node events and the engine path through
    // platform dynamics is never taken.
    let s = ScenarioBuilder::new()
        .lublin(20)
        .seed(1)
        .build()
        .expect("builds");
    assert!(s.config.node_events.is_empty());
    let out = s.run("greedy-pmtn").expect("runs");
    assert_eq!(out.restart_count, 0);
    assert_eq!(out.down_node_seconds, 0.0);
    assert_eq!(out.lost_virtual_seconds, 0.0);
}

#[test]
fn availability_study_same_seed_same_table() {
    use dfrs::experiments::availability;
    use dfrs::experiments::cli::Opts;
    let opts = Opts {
        instances: 1,
        jobs: 30,
        seed: 7,
        threads: 2,
        penalty: 0.0,
        mtbf_secs: 50_000.0,
        mttr_secs: 2_500.0,
        ..Opts::default()
    };
    let a = availability::run(&opts);
    let b = availability::run(&opts);
    assert_eq!(a.table().to_csv(), b.table().to_csv());
    assert_eq!(a.churn.fingerprint(), b.churn.fingerprint());
    assert_eq!(
        a.rows.len(),
        SchedulerRegistry::builtin().keys().len(),
        "the study covers every registered spec"
    );
}
