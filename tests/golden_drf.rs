//! Golden-trace snapshot suite for the multi-resource (GPU) extension.
//!
//! Pins the full deterministic `SimOutcome` of the DRF family
//! (`dynmcb8-drf`, `dynmcb8-drf-per:t=600`) **and** of the GPU-clamped
//! yield scheduler (`dynmcb8`, whose feasibility clamp is the only way
//! the paper family touches GPUs) on two GPU-annotated scenarios — a
//! crafted mixed-dominance trace and a Lublin seed-1 trace with 40% of
//! the jobs annotated — as checked-in JSON
//! (`tests/golden/golden_drf.json`), byte-exact like the main suite.
//! The paper scenarios in `golden_traces.json` stay GPU-free and are
//! deliberately not touched by this file.
//!
//! Regenerate (after an *intentional* behavior change) with:
//!
//! ```sh
//! DFRS_GOLDEN_REGEN=1 cargo test --test golden_drf
//! ```

mod golden_util;

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::scenario::{Scenario, ScenarioBuilder};
use dfrs_bench::json::Value;
use golden_util::snapshot;

const GOLDEN_PATH: &str = "tests/golden/golden_drf.json";

/// The specs this suite pins. Kept out of `Algorithm::ALL` (the paper's
/// closed nine) on purpose — these are extensions.
const SPECS: [&str; 3] = ["dynmcb8", "dynmcb8-drf", "dynmcb8-drf-per:t=600"];

/// A crafted mixed-dominance trace: CPU-dominant, GPU-dominant, and
/// balanced jobs contending on a small cluster, exercising the DRF
/// bisection, its eviction ordering (memory hogs), and the yield
/// family's GPU clamp.
fn crafted_gpu_scenario() -> Scenario {
    let job = |id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64| {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).expect("valid crafted job")
    };
    let gpu_job = |id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, gpu: f64, rt: f64| {
        job(id, submit, tasks, cpu, mem, rt)
            .with_gpu(gpu)
            .expect("valid crafted GPU demand")
    };
    let jobs = vec![
        // CPU-dominant baseline load.
        job(0, 0.0, 2, 1.0, 0.30, 800.0),
        job(1, 30.0, 3, 0.8, 0.25, 600.0),
        // GPU-dominant jobs that collide on the same accelerators.
        gpu_job(2, 60.0, 2, 0.2, 0.20, 1.0, 700.0),
        gpu_job(3, 90.0, 2, 0.3, 0.25, 0.9, 500.0),
        // Balanced job: CPU and GPU demands equal (degenerate dominance).
        gpu_job(4, 150.0, 1, 0.6, 0.30, 0.6, 400.0),
        // A memory hog forcing the eviction path under both objectives.
        job(5, 300.0, 4, 0.25, 0.85, 900.0),
        // Late burst mixing the two families at the same instant.
        gpu_job(6, 1_000.0, 1, 0.4, 0.20, 0.8, 300.0),
        job(7, 1_000.0, 1, 1.0, 0.20, 300.0),
        gpu_job(8, 1_200.0, 2, 0.5, 0.15, 0.5, 240.0),
    ];
    ScenarioBuilder::new()
        .label("crafted-gpu")
        .cluster(ClusterSpec::new(4, 4, 8.0).expect("valid cluster"))
        .jobs(jobs)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("crafted GPU scenario builds")
}

/// Lublin model, seed 1, load 0.7, 40% of jobs GPU-annotated
/// (deterministic per-trace salt; see `ScenarioBuilder::gpu_frac`),
/// with the paper's 5-minute penalty.
fn lublin_gpu_scenario() -> Scenario {
    ScenarioBuilder::new()
        .label("lublin-gpu-s1")
        .lublin(120)
        .load(0.7)
        .seed(1)
        .gpu_frac(0.4)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("lublin GPU scenario builds")
}

fn build_snapshots() -> Value {
    let scenarios = [crafted_gpu_scenario(), lublin_gpu_scenario()];
    let mut top = std::collections::BTreeMap::new();
    for scenario in &scenarios {
        let mut per_spec = std::collections::BTreeMap::new();
        for spec in SPECS {
            let out = scenario
                .run(&golden_util::suite_spec(spec))
                .expect("all pinned specs build");
            per_spec.insert(spec.to_string(), snapshot(&out));
        }
        top.insert(scenario.label.clone(), Value::Obj(per_spec));
    }
    Value::Obj(top)
}

#[test]
fn golden_drf_traces_match() {
    golden_util::check_or_regen(GOLDEN_PATH, "cargo test --test golden_drf", build_snapshots);
}

#[test]
fn golden_drf_covers_both_scenarios_and_all_pinned_specs() {
    let text = std::fs::read_to_string(golden_util::golden_file(GOLDEN_PATH)).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e} (regenerate first)");
    });
    let golden = dfrs_bench::json::parse(&text).expect("golden file parses");
    let top = golden.as_obj().expect("top-level object");
    assert_eq!(
        top.keys().cloned().collect::<Vec<_>>(),
        vec!["crafted-gpu".to_string(), "lublin-gpu-s1".to_string()]
    );
    for (scenario, specs) in top {
        let specs = specs.as_obj().expect("per-scenario object");
        assert_eq!(specs.len(), SPECS.len(), "{scenario}: pinned spec set");
        for spec in SPECS {
            let snap = specs
                .get(spec)
                .unwrap_or_else(|| panic!("{scenario}: missing {spec}"));
            assert!(
                !snap.get("jobs").and_then(Value::as_arr).unwrap().is_empty(),
                "{scenario}/{spec}: no job records"
            );
        }
    }
}
