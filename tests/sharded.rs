//! Contract tests for the `sharded:<inner>:shards=N` coordinator
//! family:
//!
//! 1. `shards=1` is **byte-identical** to the bare inner spec, for any
//!    workload, with node churn and GPU jobs included — the registry
//!    builds the bare scheduler in that case, and the golden suite
//!    relies on it.
//! 2. For a fixed shard count ≥ 2, replaying the same scenario gives
//!    the same fingerprint (deterministic merge order, no dependence on
//!    thread scheduling).
//! 3. Sharded runs complete every job under full invariant validation,
//!    across churn — the coordinator's view bookkeeping, net-diff plan
//!    emission, and queue rebalancing never wedge the engine.
//!
//! Floats are compared through `to_bits`: bit-for-bit claims.

use dfrs::core::{ClusterSpec, JobId, JobSpec, NodeId};
use dfrs::sched::SchedulerRegistry;
use dfrs::sim::{simulate, NodeEvent, SimConfig, SimOutcome};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Inner specs spanning the scheduler families the coordinator hosts:
/// greedy event-driven, repack-everything, periodic repack, and the
/// multi-resource DRF variant (exercised with GPU jobs below).
const INNERS: &[&str] = &["greedy-pmtn", "dynmcb8", "dynmcb8-per:t=300"];

fn cluster() -> ClusterSpec {
    ClusterSpec::new(8, 4, 8.0).expect("valid cluster")
}

/// Seeded random workload. With `gpu` set, roughly half the jobs carry
/// a GPU demand (paired with the DRF inner below).
fn workload(seed: u64, n: usize, gpu: bool) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..40.0);
            let tasks = rng.gen_range(1..=3u32);
            let cpu = [0.25, 0.5, 1.0][rng.gen_range(0..3usize)];
            let mem = 0.05 * rng.gen_range(1..8) as f64;
            let runtime = rng.gen_range(10.0..500.0);
            let mut job =
                JobSpec::new(JobId(i as u32), t, tasks, cpu, mem, runtime).expect("valid job");
            if gpu && rng.gen_bool(0.5) {
                job = job.with_gpu(0.5).expect("valid gpu demand");
            }
            job
        })
        .collect()
}

/// A down/up pair per affected node, inside the likely sim horizon.
fn churn(seed: u64, pairs: usize) -> Vec<NodeEvent> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0D0);
    let mut events = Vec::new();
    for _ in 0..pairs {
        let node = NodeId(rng.gen_range(0..8u32));
        let t_down = rng.gen_range(50.0..800.0);
        let t_up = t_down + rng.gen_range(20.0..300.0);
        events.push(NodeEvent {
            time: t_down,
            node,
            up: false,
        });
        events.push(NodeEvent {
            time: t_up,
            node,
            up: true,
        });
    }
    events
}

fn run(spec: &str, jobs: &[JobSpec], events: &[NodeEvent]) -> SimOutcome {
    let mut scheduler = SchedulerRegistry::builtin()
        .build_str(spec)
        .unwrap_or_else(|e| panic!("spec {spec:?}: {e}"));
    let cfg = SimConfig {
        validate: true,
        record_timeline: true,
        node_events: events.to_vec(),
        ..SimConfig::default()
    };
    simulate(cluster(), jobs, scheduler.as_mut(), &cfg)
}

/// Everything deterministic about an outcome, rendered to bytes
/// (wall-clock scheduler timings excluded; floats via `to_bits`).
fn fingerprint(o: &SimOutcome) -> String {
    let mut s = String::new();
    s.push_str(&dfrs::sim::export::records_to_csv(o));
    s.push_str(&format!(
        "max={:016x} mean={:016x} makespan={:016x} pre={} migr={} restarts={} \
         pre_gb={:016x} migr_gb={:016x} idle={:016x} busy={:016x} down={:016x} lost={:016x}\n",
        o.max_stretch.to_bits(),
        o.mean_stretch.to_bits(),
        o.makespan.to_bits(),
        o.preemption_count,
        o.migration_count,
        o.restart_count,
        o.preemption_gb.to_bits(),
        o.migration_gb.to_bits(),
        o.idle_node_seconds.to_bits(),
        o.busy_node_seconds.to_bits(),
        o.down_node_seconds.to_bits(),
        o.lost_virtual_seconds.to_bits(),
    ));
    s.push_str(&format!("{:?}\n", o.timeline));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `sharded:<spec>:shards=1` is byte-identical to the bare spec on
    /// random workloads with random node churn.
    #[test]
    fn one_shard_is_byte_identical_to_bare(
        seed in 0u64..10_000,
        n in 8usize..24,
        inner_ix in 0usize..INNERS.len(),
        churn_pairs in 0usize..3,
    ) {
        let inner = INNERS[inner_ix];
        let jobs = workload(seed, n, false);
        let events = churn(seed, churn_pairs);
        let bare = run(inner, &jobs, &events);
        let sharded = run(&format!("sharded:{inner}:shards=1"), &jobs, &events);
        prop_assert_eq!(&bare.algorithm, &sharded.algorithm, "shards=1 builds the bare scheduler");
        prop_assert_eq!(fingerprint(&bare), fingerprint(&sharded));
    }

    /// The identity also holds for GPU workloads under the DRF inner.
    #[test]
    fn one_shard_identity_holds_for_gpu_traces(
        seed in 0u64..10_000,
        n in 8usize..20,
    ) {
        let jobs = workload(seed, n, true);
        let bare = run("dynmcb8-drf", &jobs, &[]);
        let sharded = run("sharded:dynmcb8-drf:shards=1", &jobs, &[]);
        prop_assert_eq!(fingerprint(&bare), fingerprint(&sharded));
    }

    /// Fixed shard counts ≥ 2 replay deterministically: same scenario,
    /// same fingerprint, run over run.
    #[test]
    fn fixed_shard_count_is_deterministic(
        seed in 0u64..10_000,
        n in 8usize..24,
        inner_ix in 0usize..INNERS.len(),
        shards in prop::sample::select(vec![2u32, 4]),
        churn_pairs in 0usize..3,
    ) {
        let spec = format!("sharded:{}:shards={shards}", INNERS[inner_ix]);
        let jobs = workload(seed, n, false);
        let events = churn(seed, churn_pairs);
        let a = run(&spec, &jobs, &events);
        let b = run(&spec, &jobs, &events);
        prop_assert_eq!(a.records.len(), jobs.len(), "all jobs complete");
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}

#[test]
fn rebalancing_moves_load_and_the_run_still_drains() {
    // A burst of queue pressure all submitted at once: the coordinator
    // must spread waiting jobs across shards instead of letting the
    // first shard's queue starve the rest of the cluster, and the run
    // must drain under full validation.
    let jobs: Vec<JobSpec> = (0..24)
        .map(|i| JobSpec::new(JobId(i), 0.0, 1, 1.0, 0.4, 200.0).unwrap())
        .collect();
    let sharded = run("sharded:dynmcb8:shards=4", &jobs, &[]);
    assert_eq!(sharded.records.len(), jobs.len());
    // 8 nodes of capacity exist; a single 2-node shard alone would need
    // 12 sequential batches of 2. Anything close to the bare makespan
    // proves the waiting queue was spread over the shards.
    let bare = run("dynmcb8", &jobs, &[]);
    assert!(
        sharded.makespan <= bare.makespan * 2.0,
        "sharded {} vs bare {}",
        sharded.makespan,
        bare.makespan
    );
}

#[test]
fn sharded_survives_churn_with_validation() {
    let jobs = workload(99, 20, false);
    let events = churn(99, 2);
    let out = run("sharded:dynmcb8-per:t=300:shards=4", &jobs, &events);
    assert_eq!(out.records.len(), jobs.len());
    for r in &out.records {
        assert!(r.stretch >= 1.0);
    }
}
