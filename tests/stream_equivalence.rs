//! Streaming-mode equivalence properties (the service-mode contract):
//!
//! 1. For any workload and any registry spec, the streamed path
//!    (`simulate_stream` over an [`IterSource`] that never materializes
//!    the trace, and a [`SimSession`] fed one submit at a time) is
//!    byte-identical to the materialized batch path (`try_simulate`).
//! 2. Snapshotting a session at quiescence, serializing the snapshot to
//!    text, and restoring it into a fresh session reproduces the
//!    uninterrupted run's fingerprint exactly — including queued node
//!    events and periodic-rescheduler tick chains that were pending at
//!    the checkpoint.
//!
//! Floats are compared through `to_bits`, so these are bit-for-bit
//! claims, not tolerance checks.

use dfrs::core::json;
use dfrs::core::{ClusterSpec, JobId, JobSpec, NodeId};
use dfrs::sched::SchedulerRegistry;
use dfrs::sim::{
    simulate_stream, try_simulate, IterSource, NodeEvent, SimConfig, SimOutcome, SimSession,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Registry specs covering every scheduler family the daemon can host:
/// queue-based, greedy with preemption/migration, and the DynMCB8
/// variants (including the periodic one, whose tick chain lives in the
/// event queue and therefore inside snapshots).
const SPECS: &[&str] = &[
    "fcfs",
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per:t=300",
    "dynmcb8-drf",
];

fn cluster() -> ClusterSpec {
    ClusterSpec::new(8, 4, 8.0).expect("valid cluster")
}

/// Seeded random workload with dense ids starting at `first_id` and
/// submit times starting at `t0`. Runtimes are bounded (≤ 600 s) so a
/// drained burst always finishes long before the next burst's base
/// time in the snapshot property below.
fn burst(seed: u64, n: usize, first_id: usize, t0: f64) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = t0;
    (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..50.0);
            let tasks = rng.gen_range(1..=3u32);
            let cpu = [0.25, 0.5, 1.0][rng.gen_range(0..3usize)];
            let mem = 0.05 * rng.gen_range(1..8) as f64;
            let runtime = rng.gen_range(10.0..600.0);
            JobSpec::new(JobId((first_id + i) as u32), t, tasks, cpu, mem, runtime)
                .expect("valid job")
        })
        .collect()
}

/// Everything deterministic about an outcome, rendered to bytes
/// (wall-clock scheduler timings excluded, floats via `to_bits`).
fn fingerprint(o: &SimOutcome) -> String {
    let mut s = String::new();
    s.push_str(&o.algorithm);
    s.push('\n');
    s.push_str(&dfrs::sim::export::records_to_csv(o));
    s.push_str(&format!(
        "max={:016x} mean={:016x} makespan={:016x} pre={} migr={} restart={} pre_gb={:016x} \
         migr_gb={:016x} lost={:016x} idle={:016x} busy={:016x} down={:016x} calls={} events={} \
         done={} peak_live={} peak_res={}\n",
        o.max_stretch.to_bits(),
        o.mean_stretch.to_bits(),
        o.makespan.to_bits(),
        o.preemption_count,
        o.migration_count,
        o.restart_count,
        o.preemption_gb.to_bits(),
        o.migration_gb.to_bits(),
        o.lost_virtual_seconds.to_bits(),
        o.idle_node_seconds.to_bits(),
        o.busy_node_seconds.to_bits(),
        o.down_node_seconds.to_bits(),
        o.sched_calls,
        o.events_processed,
        o.jobs_completed,
        o.peak_live_jobs,
        o.peak_resident_jobs,
    ));
    s
}

fn build(spec: &str) -> Box<dyn dfrs::sim::Scheduler> {
    SchedulerRegistry::builtin()
        .build_str(spec)
        .unwrap_or_else(|e| panic!("bad spec {spec}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streamed == materialized, per registry spec: the batch path, an
    /// iterator source that never holds the full trace, and a live
    /// session fed submit-by-submit must all produce the same bytes.
    #[test]
    fn streamed_matches_materialized_per_spec(
        seed in 0u64..10_000,
        n in 5usize..30,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        let jobs = burst(seed, n, 0, 0.0);
        let config = SimConfig {
            penalty,
            ..SimConfig::default()
        };

        for spec in SPECS {
            let batch = try_simulate(cluster(), &jobs, build(spec).as_mut(), &config)
                .unwrap_or_else(|e| panic!("{spec} batch: {e}"));

            // Streamed: pull-based source, records collected by a sink.
            let mut source = IterSource::new(jobs.iter().cloned());
            let mut sink: Vec<dfrs::sim::JobRecord> = Vec::new();
            let mut streamed =
                simulate_stream(cluster(), &mut source, &mut sink, build(spec).as_mut(), &config)
                    .unwrap_or_else(|e| panic!("{spec} streamed: {e}"));
            prop_assert!(streamed.records.is_empty(), "stream path materialized records");
            streamed.records = sink;
            prop_assert_eq!(
                fingerprint(&batch), fingerprint(&streamed),
                "{} streamed != batch", spec
            );

            // Session: one submit() per job, then drain.
            let mut session =
                SimSession::new(cluster(), *spec, build(spec), config.clone());
            for job in &jobs {
                session.submit(*job).unwrap_or_else(|e| panic!("{spec} submit: {e}"));
            }
            session.drain().unwrap_or_else(|e| panic!("{spec} drain: {e}"));
            prop_assert_eq!(
                fingerprint(&batch), fingerprint(&session.outcome()),
                "{} session != batch", spec
            );
        }
    }

    /// Snapshot/restore is transparent: run burst 1, drain to
    /// quiescence, checkpoint through the textual snapshot form,
    /// restore into a brand-new session, run burst 2 — and get exactly
    /// the bytes of the session that never checkpointed. Node events
    /// queued during burst 1 and (for `dynmcb8-per`) the pending tick
    /// chain must survive the round trip.
    #[test]
    fn snapshot_restore_reproduces_uninterrupted_fingerprint(
        seed in 0u64..10_000,
        n1 in 3usize..15,
        n2 in 3usize..15,
        node in 0u32..8,
        down_at in 5.0f64..50.0,
        outage in 10.0f64..100.0,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        let burst1 = burst(seed, n1, 0, 0.0);
        // Base time far beyond any burst-1 completion (runtimes ≤ 600,
        // penalty ≤ 300, so even a fully serialized burst ends well
        // under 15 * 950 + 750 < 1e6).
        let burst2 = burst(seed.wrapping_add(1), n2, n1, 1_000_000.0);
        // Queued failure/repair events: installed at session creation,
        // carried across the checkpoint inside the snapshot's event
        // queue (restore must not re-install them).
        let config = SimConfig {
            penalty,
            node_events: vec![
                NodeEvent { time: down_at, node: NodeId(node), up: false },
                NodeEvent { time: down_at + outage, node: NodeId(node), up: true },
            ],
            ..SimConfig::default()
        };

        for spec in SPECS {
            let run_burst =
                |s: &mut SimSession, jobs: &[JobSpec]| -> Result<(), dfrs::sim::SimError> {
                    for job in jobs {
                        s.submit(*job)?;
                    }
                    s.drain()
                };

            // Uninterrupted reference session.
            let mut plain = SimSession::new(cluster(), *spec, build(spec), config.clone());
            run_burst(&mut plain, &burst1).unwrap_or_else(|e| panic!("{spec} burst1: {e}"));
            run_burst(&mut plain, &burst2).unwrap_or_else(|e| panic!("{spec} burst2: {e}"));

            // Checkpointed session: identical commands, but the state
            // crosses a text-serialized snapshot between the bursts.
            let mut front = SimSession::new(cluster(), *spec, build(spec), config.clone());
            run_burst(&mut front, &burst1).unwrap_or_else(|e| panic!("{spec} burst1: {e}"));
            prop_assert!(front.is_quiescent());
            // Records stream out before a checkpoint (they are not part
            // of the snapshot, by design) — carry them across by hand.
            let mut carried = front.take_records();
            let doc = front.snapshot().unwrap_or_else(|e| panic!("{spec} snapshot: {e}"));
            let text = doc.pretty();
            drop(front);

            let reparsed = json::parse(&text).expect("snapshot text parses");
            let mut resumed = SimSession::restore(&reparsed, build(spec))
                .unwrap_or_else(|e| panic!("{spec} restore: {e}"));
            run_burst(&mut resumed, &burst2).unwrap_or_else(|e| panic!("{spec} burst2: {e}"));

            let mut resumed_out = resumed.outcome();
            carried.extend(resumed_out.records);
            resumed_out.records = carried;
            prop_assert_eq!(
                fingerprint(&plain.outcome()), fingerprint(&resumed_out),
                "{} checkpointed run diverged from uninterrupted run", spec
            );
        }
    }

    /// Snapshot/restore under the sharded coordinator: the same
    /// checkpoint-between-bursts property, but with the cluster
    /// partitioned into 4 shards (2 nodes each) and bursts salted with
    /// wide jobs — jobs no shard can hold, which the coordinator places
    /// by borrowing nodes across shard boundaries. Both bursts carry
    /// wide jobs, so borrows happen on either side of the checkpoint
    /// and the restored coordinator must rebuild its routing state from
    /// the snapshot alone.
    #[test]
    fn sharded_snapshot_restore_reproduces_uninterrupted_fingerprint(
        seed in 0u64..10_000,
        n1 in 3usize..10,
        n2 in 3usize..10,
        wide_tasks in 4u32..=6,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        // A wide job: too many memory-heavy tasks for a 2-node shard
        // (2 tasks of 0.4 fit one node, so 4..=6 tasks need 2.. nodes
        // and at full shard occupancy force coordinator borrows).
        let wide = |id: usize, t: f64| {
            JobSpec::new(JobId(id as u32), t, wide_tasks, 0.5, 0.4, 200.0)
                .expect("valid wide job")
        };
        let mut burst1 = burst(seed, n1, 0, 0.0);
        burst1.push(wide(n1, burst1.last().map_or(5.0, |j| j.submit_time + 5.0)));
        let mut burst2 = burst(seed.wrapping_add(1), n2, n1 + 1, 1_000_000.0);
        burst2.push(wide(
            n1 + 1 + n2,
            burst2.last().map_or(1_000_005.0, |j| j.submit_time + 5.0),
        ));
        let config = SimConfig { penalty, ..SimConfig::default() };

        for inner in ["fcfs", "greedy-pmtn", "dynmcb8-per:t=300"] {
            let spec = format!("sharded:{inner}:shards=4");
            let run_burst =
                |s: &mut SimSession, jobs: &[JobSpec]| -> Result<(), dfrs::sim::SimError> {
                    for job in jobs {
                        s.submit(*job)?;
                    }
                    s.drain()
                };

            let mut plain = SimSession::new(cluster(), &spec, build(&spec), config.clone());
            run_burst(&mut plain, &burst1).unwrap_or_else(|e| panic!("{spec} burst1: {e}"));
            run_burst(&mut plain, &burst2).unwrap_or_else(|e| panic!("{spec} burst2: {e}"));

            let mut front = SimSession::new(cluster(), &spec, build(&spec), config.clone());
            run_burst(&mut front, &burst1).unwrap_or_else(|e| panic!("{spec} burst1: {e}"));
            prop_assert!(front.is_quiescent());
            let mut carried = front.take_records();
            let doc = front.snapshot().unwrap_or_else(|e| panic!("{spec} snapshot: {e}"));
            let text = doc.pretty();
            drop(front);

            let reparsed = json::parse(&text).expect("snapshot text parses");
            let mut resumed = SimSession::restore(&reparsed, build(&spec))
                .unwrap_or_else(|e| panic!("{spec} restore: {e}"));
            run_burst(&mut resumed, &burst2).unwrap_or_else(|e| panic!("{spec} burst2: {e}"));

            let mut resumed_out = resumed.outcome();
            carried.extend(resumed_out.records);
            resumed_out.records = carried;
            prop_assert_eq!(
                fingerprint(&plain.outcome()), fingerprint(&resumed_out),
                "{} checkpointed run diverged from uninterrupted run", spec
            );
        }
    }
}
