//! Shared machinery of the golden-trace snapshot suites
//! (`golden_traces.rs`, `golden_drf.rs`): the byte-exact `SimOutcome`
//! snapshot, the recursive field diff, and the check-or-regenerate
//! driver keyed on `DFRS_GOLDEN_REGEN`.

#![allow(dead_code)]

use dfrs::sim::SimOutcome;
use dfrs_bench::json::{self, bits, obj, Value};

/// One float metric: exact bits plus a human-readable decimal.
pub fn metric(x: f64) -> Value {
    obj([("bits".into(), bits(x)), ("dec".into(), Value::Num(x))])
}

/// Snapshot every deterministic field of an outcome. Wall-clock fields
/// (`sched_wall_*`) are intentionally excluded.
pub fn snapshot(out: &SimOutcome) -> Value {
    let jobs: Vec<Value> = out
        .records
        .iter()
        .map(|r| {
            Value::Arr(vec![
                Value::Num(r.id.0 as f64),
                r.first_start.map(bits).unwrap_or(Value::Null),
                bits(r.completion),
                bits(r.stretch),
                Value::Num(r.preemptions as f64),
                Value::Num(r.migrations as f64),
            ])
        })
        .collect();
    obj([
        ("algorithm".into(), Value::Str(out.algorithm.clone())),
        ("max_stretch".into(), metric(out.max_stretch)),
        ("mean_stretch".into(), metric(out.mean_stretch)),
        ("makespan".into(), metric(out.makespan)),
        (
            "preemption_count".into(),
            Value::Num(out.preemption_count as f64),
        ),
        (
            "migration_count".into(),
            Value::Num(out.migration_count as f64),
        ),
        ("preemption_gb".into(), metric(out.preemption_gb)),
        ("migration_gb".into(), metric(out.migration_gb)),
        ("idle_node_seconds".into(), metric(out.idle_node_seconds)),
        ("busy_node_seconds".into(), metric(out.busy_node_seconds)),
        ("sched_calls".into(), Value::Num(out.sched_calls as f64)),
        (
            "events_processed".into(),
            Value::Num(out.events_processed as f64),
        ),
        (
            "jobs_header".into(),
            Value::Str("[id, first_start, completion, stretch, preemptions, migrations]".into()),
        ),
        ("jobs".into(), Value::Arr(jobs)),
    ])
}

/// Recursively diff two snapshot values, collecting readable lines.
pub fn diff(path: &str, golden: &Value, current: &Value, out: &mut Vec<String>) {
    match (golden, current) {
        (Value::Obj(g), Value::Obj(c)) => {
            for key in g.keys().chain(c.keys().filter(|k| !g.contains_key(*k))) {
                let p = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                match (g.get(key), c.get(key)) {
                    (Some(gv), Some(cv)) => diff(&p, gv, cv, out),
                    (Some(_), None) => out.push(format!("{p}: missing from current run")),
                    (None, Some(_)) => out.push(format!("{p}: not in golden file")),
                    (None, None) => unreachable!(),
                }
            }
        }
        (Value::Arr(g), Value::Arr(c)) => {
            if g.len() != c.len() {
                out.push(format!(
                    "{path}: length {} in golden vs {} now",
                    g.len(),
                    c.len()
                ));
                return;
            }
            for (i, (gv, cv)) in g.iter().zip(c.iter()).enumerate() {
                diff(&format!("{path}[{i}]"), gv, cv, out);
            }
        }
        (g, c) if g == c => {}
        (g, c) => out.push(format!("{path}: golden {} vs now {}", render(g), render(c))),
    }
}

/// Render a scalar for the diff message; bit strings also get decoded
/// to decimal so the drift is human-readable.
fn render(v: &Value) -> String {
    if let Some(x) = v.as_bits_f64() {
        return format!("{} ({x})", v.as_str().unwrap_or_default());
    }
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => n.to_string(),
        Value::Str(s) => format!("{s:?}"),
        other => other.pretty().trim_end().to_string(),
    }
}

/// Shard count the suites run under, from `DFRS_SHARDS` (unset → the
/// bare specs). `1` wraps every spec in `sharded:<spec>:shards=1`,
/// which must stay **byte-identical** to the pinned bare goldens (the
/// registry builds the bare scheduler in that case); higher counts
/// replace the byte comparison with a replay-stability check (see
/// [`check_or_regen`]).
pub fn shards() -> Option<u32> {
    let raw = std::env::var("DFRS_SHARDS").ok()?;
    let n: u32 = raw
        .trim()
        .parse()
        .expect("DFRS_SHARDS must be a positive integer");
    assert!(n >= 1, "DFRS_SHARDS must be at least 1");
    Some(n)
}

/// `spec` as the suite actually runs it: wrapped in the sharded
/// coordinator when `DFRS_SHARDS` is set.
pub fn suite_spec(spec: &str) -> String {
    match shards() {
        Some(n) => format!("sharded:{spec}:shards={n}"),
        None => spec.to_string(),
    }
}

/// The absolute path of a golden file given its repo-relative path.
pub fn golden_file(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The check-or-regenerate driver: under `DFRS_GOLDEN_REGEN` it pins
/// `build()` (after a back-to-back determinism check) to `rel`;
/// otherwise it diffs `build()` against the pinned file and panics with
/// per-field drift lines. `regen_cmd` is the command named in the
/// failure hints (e.g. `cargo test --test golden_drf`).
pub fn check_or_regen(rel: &str, regen_cmd: &str, build: impl Fn() -> Value) {
    let current = build();

    if let Some(n) = shards().filter(|&n| n > 1) {
        assert!(
            std::env::var_os("DFRS_GOLDEN_REGEN").is_none(),
            "refusing to pin golden files from a sharded (DFRS_SHARDS={n}) run; \
             goldens are recorded from the bare specs"
        );
        // Byte-identity against the pinned file is a shards=1 property.
        // At higher counts the suite instead pins replay stability: two
        // builds of the full snapshot document must agree bit for bit
        // (deterministic merge order, no dependence on thread timing).
        assert_eq!(
            current,
            build(),
            "sharded (DFRS_SHARDS={n}) snapshots are not run-to-run deterministic"
        );
        return;
    }

    if std::env::var_os("DFRS_GOLDEN_REGEN").is_some() {
        // Regeneration guard: two back-to-back builds must agree before
        // anything is pinned.
        assert_eq!(
            current,
            build(),
            "snapshots are not run-to-run deterministic; refusing to pin"
        );
        let path = golden_file(rel);
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, current.pretty()).expect("write golden file");
        eprintln!("golden snapshots regenerated at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(golden_file(rel)).unwrap_or_else(|e| {
        panic!(
            "cannot read {rel}: {e}\n\
             run `DFRS_GOLDEN_REGEN=1 {regen_cmd}` to create it"
        )
    });
    let golden = json::parse(&text).expect("golden file parses");

    let mut diffs = Vec::new();
    diff("", &golden, &current, &mut diffs);
    if !diffs.is_empty() {
        let total = diffs.len();
        let shown: Vec<String> = diffs.into_iter().take(40).collect();
        panic!(
            "golden trace drift: {total} field(s) changed (first {}):\n  {}\n\
             if this change is intentional, regenerate with \
             DFRS_GOLDEN_REGEN=1 {regen_cmd}",
            shown.len(),
            shown.join("\n  ")
        );
    }
}
