//! Golden-trace snapshot suite.
//!
//! Pins the full deterministic `SimOutcome` of every registered paper
//! algorithm on three fixed scenarios — a crafted memory-pressure
//! trace, a Lublin seed-1 trace, and a bursty HPC2N-like week — as
//! checked-in JSON (`tests/golden/golden_traces.json`). Floats are
//! stored as exact bit strings: any engine or scheduler change that
//! shifts a **byte** of any metric fails with a per-field diff.
//!
//! Regenerate (after an *intentional* behavior change) with:
//!
//! ```sh
//! DFRS_GOLDEN_REGEN=1 cargo test --test golden_traces
//! ```

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::scenario::{Scenario, ScenarioBuilder};
use dfrs::sched::Algorithm;
use dfrs::sim::SimOutcome;
use dfrs_bench::json::{self, bits, obj, Value};

const GOLDEN_PATH: &str = "tests/golden/golden_traces.json";

/// A crafted trace on a small cluster that exercises memory-pressure
/// evictions, resumes, migrations, multi-task placement, and the
/// rescheduling penalty for every algorithm family.
fn crafted_scenario() -> Scenario {
    let job = |id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64| {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).expect("valid crafted job")
    };
    let jobs = vec![
        // A memory hog across the whole cluster — later arrivals must
        // evict it (or queue on it).
        job(0, 0.0, 4, 0.25, 0.9, 3_000.0),
        // CPU-bound multi-task jobs that overload CPU when coresident.
        job(1, 50.0, 2, 1.0, 0.30, 800.0),
        job(2, 120.0, 3, 1.0, 0.25, 600.0),
        // A short sequential job arriving under pressure.
        job(3, 200.0, 1, 0.5, 0.40, 120.0),
        // A wide job that needs one task per node.
        job(4, 400.0, 4, 0.75, 0.45, 900.0),
        // Burst at the same instant (FIFO tie-breaking).
        job(5, 700.0, 1, 1.0, 0.20, 300.0),
        job(6, 700.0, 1, 1.0, 0.20, 300.0),
        job(7, 700.0, 2, 0.25, 0.55, 450.0),
        // Late small jobs that fit in leftovers.
        job(8, 1_500.0, 1, 0.25, 0.10, 60.0),
        job(9, 1_600.0, 2, 0.5, 0.15, 240.0),
        // A second memory hog to force another eviction round.
        job(10, 1_800.0, 2, 0.25, 0.80, 700.0),
        job(11, 2_000.0, 1, 1.0, 0.35, 500.0),
    ];
    ScenarioBuilder::new()
        .label("crafted")
        .cluster(ClusterSpec::new(4, 4, 8.0).expect("valid cluster"))
        .jobs(jobs)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("crafted scenario builds")
}

/// Lublin model, seed 1, load 0.7, with the paper's 5-minute penalty.
fn lublin_scenario() -> Scenario {
    ScenarioBuilder::new()
        .label("lublin-s1")
        .lublin(120)
        .load(0.7)
        .seed(1)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("lublin scenario builds")
}

/// One HPC2N-like synthetic week (seed 3) with the paper's penalty: a
/// *bursty* arrival pattern — day/night and weekday cycles with batch
/// bursts — unlike the steady crafted trace and the Lublin stream.
/// Pins incremental-repack correctness on the arrive/complete
/// oscillations and pressure plateaus where the repack memo actually
/// hits.
fn hpc2n_scenario() -> Scenario {
    let mut weeks = ScenarioBuilder::new()
        .label("hpc2n-s3")
        .hpc2n_like(1, 220.0)
        .seed(3)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build_all()
        .expect("hpc2n-like scenario builds");
    assert_eq!(weeks.len(), 1, "one week requested");
    weeks.remove(0)
}

/// One float metric: exact bits plus a human-readable decimal.
fn metric(x: f64) -> Value {
    obj([("bits".into(), bits(x)), ("dec".into(), Value::Num(x))])
}

/// Snapshot every deterministic field of an outcome. Wall-clock fields
/// (`sched_wall_*`) are intentionally excluded.
fn snapshot(out: &SimOutcome) -> Value {
    let jobs: Vec<Value> = out
        .records
        .iter()
        .map(|r| {
            Value::Arr(vec![
                Value::Num(r.id.0 as f64),
                r.first_start.map(bits).unwrap_or(Value::Null),
                bits(r.completion),
                bits(r.stretch),
                Value::Num(r.preemptions as f64),
                Value::Num(r.migrations as f64),
            ])
        })
        .collect();
    obj([
        ("algorithm".into(), Value::Str(out.algorithm.clone())),
        ("max_stretch".into(), metric(out.max_stretch)),
        ("mean_stretch".into(), metric(out.mean_stretch)),
        ("makespan".into(), metric(out.makespan)),
        (
            "preemption_count".into(),
            Value::Num(out.preemption_count as f64),
        ),
        (
            "migration_count".into(),
            Value::Num(out.migration_count as f64),
        ),
        ("preemption_gb".into(), metric(out.preemption_gb)),
        ("migration_gb".into(), metric(out.migration_gb)),
        ("idle_node_seconds".into(), metric(out.idle_node_seconds)),
        ("busy_node_seconds".into(), metric(out.busy_node_seconds)),
        ("sched_calls".into(), Value::Num(out.sched_calls as f64)),
        (
            "events_processed".into(),
            Value::Num(out.events_processed as f64),
        ),
        (
            "jobs_header".into(),
            Value::Str("[id, first_start, completion, stretch, preemptions, migrations]".into()),
        ),
        ("jobs".into(), Value::Arr(jobs)),
    ])
}

fn build_snapshots() -> Value {
    let scenarios = [crafted_scenario(), lublin_scenario(), hpc2n_scenario()];
    let mut top = std::collections::BTreeMap::new();
    for scenario in &scenarios {
        let mut per_spec = std::collections::BTreeMap::new();
        for algo in Algorithm::ALL {
            let out = scenario
                .run(algo.key())
                .expect("all registered specs build");
            per_spec.insert(algo.key().to_string(), snapshot(&out));
        }
        top.insert(scenario.label.clone(), Value::Obj(per_spec));
    }
    Value::Obj(top)
}

/// Recursively diff two snapshot values, collecting readable lines.
fn diff(path: &str, golden: &Value, current: &Value, out: &mut Vec<String>) {
    match (golden, current) {
        (Value::Obj(g), Value::Obj(c)) => {
            for key in g.keys().chain(c.keys().filter(|k| !g.contains_key(*k))) {
                let p = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                match (g.get(key), c.get(key)) {
                    (Some(gv), Some(cv)) => diff(&p, gv, cv, out),
                    (Some(_), None) => out.push(format!("{p}: missing from current run")),
                    (None, Some(_)) => out.push(format!("{p}: not in golden file")),
                    (None, None) => unreachable!(),
                }
            }
        }
        (Value::Arr(g), Value::Arr(c)) => {
            if g.len() != c.len() {
                out.push(format!(
                    "{path}: length {} in golden vs {} now",
                    g.len(),
                    c.len()
                ));
                return;
            }
            for (i, (gv, cv)) in g.iter().zip(c.iter()).enumerate() {
                diff(&format!("{path}[{i}]"), gv, cv, out);
            }
        }
        (g, c) if g == c => {}
        (g, c) => out.push(format!("{path}: golden {} vs now {}", render(g), render(c))),
    }
}

/// Render a scalar for the diff message; bit strings also get decoded
/// to decimal so the drift is human-readable.
fn render(v: &Value) -> String {
    if let Some(x) = v.as_bits_f64() {
        return format!("{} ({x})", v.as_str().unwrap_or_default());
    }
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => n.to_string(),
        Value::Str(s) => format!("{s:?}"),
        other => other.pretty().trim_end().to_string(),
    }
}

fn golden_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn golden_traces_match() {
    let current = build_snapshots();

    if std::env::var_os("DFRS_GOLDEN_REGEN").is_some() {
        // Regeneration guard: two back-to-back builds must agree before
        // anything is pinned.
        assert_eq!(
            current,
            build_snapshots(),
            "snapshots are not run-to-run deterministic; refusing to pin"
        );
        let path = golden_file();
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, current.pretty()).expect("write golden file");
        eprintln!("golden snapshots regenerated at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(golden_file()).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN_PATH}: {e}\n\
             run `DFRS_GOLDEN_REGEN=1 cargo test --test golden_traces` to create it"
        )
    });
    let golden = json::parse(&text).expect("golden file parses");

    let mut diffs = Vec::new();
    diff("", &golden, &current, &mut diffs);
    if !diffs.is_empty() {
        let total = diffs.len();
        let shown: Vec<String> = diffs.into_iter().take(40).collect();
        panic!(
            "golden trace drift: {total} field(s) changed (first {}):\n  {}\n\
             if this change is intentional, regenerate with \
             DFRS_GOLDEN_REGEN=1 cargo test --test golden_traces",
            shown.len(),
            shown.join("\n  ")
        );
    }
}

#[test]
fn golden_covers_all_nine_specs_on_every_scenario() {
    let text = std::fs::read_to_string(golden_file()).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e} (regenerate first)");
    });
    let golden = json::parse(&text).expect("golden file parses");
    let top = golden.as_obj().expect("top-level object");
    assert_eq!(
        top.keys().cloned().collect::<Vec<_>>(),
        vec![
            "crafted".to_string(),
            "hpc2n-s3".to_string(),
            "lublin-s1".to_string(),
        ]
    );
    for (scenario, specs) in top {
        let specs = specs.as_obj().expect("per-scenario object");
        assert_eq!(specs.len(), 9, "{scenario}: expected all nine specs");
        for algo in Algorithm::ALL {
            let snap = specs
                .get(algo.key())
                .unwrap_or_else(|| panic!("{scenario}: missing {}", algo.key()));
            assert_eq!(
                snap.get("algorithm").and_then(Value::as_str),
                Some(algo.name()),
                "{scenario}/{}",
                algo.key()
            );
            assert!(
                !snap.get("jobs").and_then(Value::as_arr).unwrap().is_empty(),
                "{scenario}/{}: no job records",
                algo.key()
            );
        }
    }
}
