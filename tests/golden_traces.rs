//! Golden-trace snapshot suite.
//!
//! Pins the full deterministic `SimOutcome` of every registered paper
//! algorithm on three fixed scenarios — a crafted memory-pressure
//! trace, a Lublin seed-1 trace, and a bursty HPC2N-like week — as
//! checked-in JSON (`tests/golden/golden_traces.json`). Floats are
//! stored as exact bit strings: any engine or scheduler change that
//! shifts a **byte** of any metric fails with a per-field diff.
//!
//! Regenerate (after an *intentional* behavior change) with:
//!
//! ```sh
//! DFRS_GOLDEN_REGEN=1 cargo test --test golden_traces
//! ```

mod golden_util;

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::scenario::{Scenario, ScenarioBuilder};
use dfrs::sched::Algorithm;
use dfrs_bench::json::{self, Value};
use golden_util::snapshot;

const GOLDEN_PATH: &str = "tests/golden/golden_traces.json";

/// A crafted trace on a small cluster that exercises memory-pressure
/// evictions, resumes, migrations, multi-task placement, and the
/// rescheduling penalty for every algorithm family.
fn crafted_scenario() -> Scenario {
    let job = |id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64| {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).expect("valid crafted job")
    };
    let jobs = vec![
        // A memory hog across the whole cluster — later arrivals must
        // evict it (or queue on it).
        job(0, 0.0, 4, 0.25, 0.9, 3_000.0),
        // CPU-bound multi-task jobs that overload CPU when coresident.
        job(1, 50.0, 2, 1.0, 0.30, 800.0),
        job(2, 120.0, 3, 1.0, 0.25, 600.0),
        // A short sequential job arriving under pressure.
        job(3, 200.0, 1, 0.5, 0.40, 120.0),
        // A wide job that needs one task per node.
        job(4, 400.0, 4, 0.75, 0.45, 900.0),
        // Burst at the same instant (FIFO tie-breaking).
        job(5, 700.0, 1, 1.0, 0.20, 300.0),
        job(6, 700.0, 1, 1.0, 0.20, 300.0),
        job(7, 700.0, 2, 0.25, 0.55, 450.0),
        // Late small jobs that fit in leftovers.
        job(8, 1_500.0, 1, 0.25, 0.10, 60.0),
        job(9, 1_600.0, 2, 0.5, 0.15, 240.0),
        // A second memory hog to force another eviction round.
        job(10, 1_800.0, 2, 0.25, 0.80, 700.0),
        job(11, 2_000.0, 1, 1.0, 0.35, 500.0),
    ];
    ScenarioBuilder::new()
        .label("crafted")
        .cluster(ClusterSpec::new(4, 4, 8.0).expect("valid cluster"))
        .jobs(jobs)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("crafted scenario builds")
}

/// Lublin model, seed 1, load 0.7, with the paper's 5-minute penalty.
fn lublin_scenario() -> Scenario {
    ScenarioBuilder::new()
        .label("lublin-s1")
        .lublin(120)
        .load(0.7)
        .seed(1)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build()
        .expect("lublin scenario builds")
}

/// One HPC2N-like synthetic week (seed 3) with the paper's penalty: a
/// *bursty* arrival pattern — day/night and weekday cycles with batch
/// bursts — unlike the steady crafted trace and the Lublin stream.
/// Pins incremental-repack correctness on the arrive/complete
/// oscillations and pressure plateaus where the repack memo actually
/// hits.
fn hpc2n_scenario() -> Scenario {
    let mut weeks = ScenarioBuilder::new()
        .label("hpc2n-s3")
        .hpc2n_like(1, 220.0)
        .seed(3)
        .penalty(dfrs::core::constants::RESCHEDULING_PENALTY_SECS)
        .build_all()
        .expect("hpc2n-like scenario builds");
    assert_eq!(weeks.len(), 1, "one week requested");
    weeks.remove(0)
}

fn build_snapshots() -> Value {
    let scenarios = [crafted_scenario(), lublin_scenario(), hpc2n_scenario()];
    let mut top = std::collections::BTreeMap::new();
    for scenario in &scenarios {
        let mut per_spec = std::collections::BTreeMap::new();
        for algo in Algorithm::ALL {
            let out = scenario
                .run(&golden_util::suite_spec(algo.key()))
                .expect("all registered specs build");
            per_spec.insert(algo.key().to_string(), snapshot(&out));
        }
        top.insert(scenario.label.clone(), Value::Obj(per_spec));
    }
    Value::Obj(top)
}

#[test]
fn golden_traces_match() {
    golden_util::check_or_regen(
        GOLDEN_PATH,
        "cargo test --test golden_traces",
        build_snapshots,
    );
}

#[test]
fn golden_covers_all_nine_specs_on_every_scenario() {
    let text = std::fs::read_to_string(golden_util::golden_file(GOLDEN_PATH)).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e} (regenerate first)");
    });
    let golden = json::parse(&text).expect("golden file parses");
    let top = golden.as_obj().expect("top-level object");
    assert_eq!(
        top.keys().cloned().collect::<Vec<_>>(),
        vec![
            "crafted".to_string(),
            "hpc2n-s3".to_string(),
            "lublin-s1".to_string(),
        ]
    );
    for (scenario, specs) in top {
        let specs = specs.as_obj().expect("per-scenario object");
        assert_eq!(specs.len(), 9, "{scenario}: expected all nine specs");
        for algo in Algorithm::ALL {
            let snap = specs
                .get(algo.key())
                .unwrap_or_else(|| panic!("{scenario}: missing {}", algo.key()));
            assert_eq!(
                snap.get("algorithm").and_then(Value::as_str),
                Some(algo.name()),
                "{scenario}/{}",
                algo.key()
            );
            assert!(
                !snap.get("jobs").and_then(Value::as_arr).unwrap().is_empty(),
                "{scenario}/{}: no job records",
                algo.key()
            );
        }
    }
}
