//! Qualitative reproduction checks for the paper's Section V claims, at
//! laptop scale. Each test averages a few seeds so heuristic noise on
//! single instances doesn't flake; the quantitative tables live in
//! EXPERIMENTS.md.
//!
//! The multi-seed suites simulate hundreds of (instance × algorithm)
//! runs and dominate the default suite's wall clock, so they are
//! `#[ignore]`d by default. Run them (release mode recommended) with:
//!
//! ```sh
//! cargo test --release --test paper_claims -- --ignored
//! ```
//!
//! The non-ignored [`paper_claims_smoke`] test keeps a fast end-to-end
//! pass over the same code path in the default suite.

use dfrs::experiments::instances::{hpc2n_like_instances, scaled_instances};
use dfrs::scenario::degradation_row;
use dfrs::sched::Algorithm;
use dfrs::{Campaign, CampaignResult, Scenario};

const ALGOS: [Algorithm; 9] = Algorithm::ALL;

fn idx(a: Algorithm) -> usize {
    ALGOS.iter().position(|x| *x == a).unwrap()
}

fn run_matrix(
    instances: &[Scenario],
    algorithms: &[Algorithm],
    penalty: f64,
    threads: usize,
) -> CampaignResult {
    Campaign::over(instances, algorithms)
        .penalty(penalty)
        .threads(threads)
        .run()
}

/// Average degradation per algorithm over instances.
fn avg_degradation(result: &CampaignResult) -> Vec<f64> {
    let mut sums = vec![0.0; result.specs.len()];
    for row in &result.cells {
        for (a, d) in degradation_row(row).into_iter().enumerate() {
            sums[a] += d;
        }
    }
    sums.iter().map(|s| s / result.cells.len() as f64).collect()
}

/// Fast non-ignored pass over the claims pipeline: one small matrix,
/// asserting only the robust headline ordering (batch ≫ preempting DFRS
/// without penalty). Everything statistical lives in the ignored suites.
#[test]
fn paper_claims_smoke() {
    let instances = scaled_instances(2, 40, &[0.7], 100);
    let results = run_matrix(&instances, &ALGOS, 0.0, 2);
    let avg = avg_degradation(&results);
    assert_eq!(results.cells.len(), instances.len());
    assert!(
        avg[idx(Algorithm::DynMcb8)] <= avg[idx(Algorithm::Fcfs)],
        "DynMCB8 ({:.2}) must not trail FCFS ({:.2}) without a penalty",
        avg[idx(Algorithm::DynMcb8)],
        avg[idx(Algorithm::Fcfs)]
    );
    assert!(avg.iter().all(|&d| d >= 1.0));
}

#[test]
#[ignore = "multi-seed statistical suite; run with: cargo test --release --test paper_claims -- --ignored"]
fn figure1a_ordering_no_penalty() {
    // Claim (Fig. 1(a)): without a penalty, DYNMCB8 is (near-)best;
    // FCFS, EASY and GREEDY are orders of magnitude worse; the greedy
    // preempting algorithms improve hugely over batch.
    let instances = scaled_instances(4, 80, &[0.5, 0.8], 100);
    let results = run_matrix(&instances, &ALGOS, 0.0, 1);
    let avg = avg_degradation(&results);

    assert!(
        avg[idx(Algorithm::DynMcb8)] < 2.0,
        "DynMCB8 avg {:.2}",
        avg[idx(Algorithm::DynMcb8)]
    );
    for batch in [Algorithm::Fcfs, Algorithm::Easy] {
        assert!(
            avg[idx(batch)] > 10.0 * avg[idx(Algorithm::GreedyPmtn)],
            "{batch} ({:.1}) should be ≫ Greedy-pmtn ({:.1})",
            avg[idx(batch)],
            avg[idx(Algorithm::GreedyPmtn)]
        );
    }
    assert!(
        avg[idx(Algorithm::Greedy)] > avg[idx(Algorithm::GreedyPmtn)],
        "plain GREEDY must trail its preempting variants"
    );
    assert!(
        avg[idx(Algorithm::Fcfs)] > avg[idx(Algorithm::Easy)],
        "backfilling beats FIFO on average"
    );
}

#[test]
#[ignore = "multi-seed statistical suite; run with: cargo test --release --test paper_claims -- --ignored"]
fn figure1b_penalty_dethrones_event_driven_dynmcb8() {
    // Claim (Fig. 1(b)): with the 5-minute penalty, DYNMCB8 is no longer
    // best — a periodic variant (or greedy-pmtn at low load) wins — but
    // DYNMCB8 still beats the batch schedulers.
    let instances = scaled_instances(4, 80, &[0.7], 200);
    let results = run_matrix(&instances, &ALGOS, 300.0, 1);
    let avg = avg_degradation(&results);

    let periodic_best = [
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
        Algorithm::DynMcb8StretchPer,
        Algorithm::GreedyPmtn,
        Algorithm::GreedyPmtnMigr,
    ]
    .iter()
    .map(|a| avg[idx(*a)])
    .fold(f64::INFINITY, f64::min);
    assert!(
        periodic_best <= avg[idx(Algorithm::DynMcb8)],
        "with a penalty something must beat aggressive DynMCB8: best {periodic_best:.2} vs {:.2}",
        avg[idx(Algorithm::DynMcb8)]
    );
    assert!(
        avg[idx(Algorithm::DynMcb8)] < avg[idx(Algorithm::Fcfs)],
        "DynMCB8 with penalty still beats FCFS"
    );
}

#[test]
#[ignore = "multi-seed statistical suite; run with: cargo test --release --test paper_claims -- --ignored"]
fn stretch_per_does_not_beat_yield_per() {
    // Claim: optimizing the estimated stretch directly is NOT better
    // than optimizing the yield (Section V: "DYNMCB8-STRETCH-PER always
    // has average results worse than DYNMCB8-PER" — we allow a tie band
    // at this small scale).
    let instances = scaled_instances(5, 80, &[0.6, 0.9], 300);
    let results = run_matrix(&instances, &ALGOS, 300.0, 1);
    let avg = avg_degradation(&results);
    assert!(
        avg[idx(Algorithm::DynMcb8StretchPer)] >= avg[idx(Algorithm::DynMcb8Per)] * 0.8,
        "stretch-per ({:.2}) unexpectedly dominates yield-per ({:.2})",
        avg[idx(Algorithm::DynMcb8StretchPer)],
        avg[idx(Algorithm::DynMcb8Per)]
    );
}

#[test]
#[ignore = "multi-seed statistical suite; run with: cargo test --release --test paper_claims -- --ignored"]
fn hpc2n_short_serial_mix_helps_greedy() {
    // Claim (Table I discussion): the HPC2N trace's many short serial
    // jobs shrink the greedy algorithms' disadvantage dramatically —
    // Greedy-pmtn's average degradation drops to within a few × of the
    // best (1.72 in the paper vs 9.45 on scaled synthetic).
    let weeks = hpc2n_like_instances(4, 250.0, 9);
    let results = run_matrix(&weeks, &ALGOS, 300.0, 1);
    let avg = avg_degradation(&results);
    assert!(
        avg[idx(Algorithm::GreedyPmtn)] < 8.0,
        "Greedy-pmtn should be near-best on short-serial workloads, got {:.2}",
        avg[idx(Algorithm::GreedyPmtn)]
    );
    // And batch is still far behind.
    assert!(avg[idx(Algorithm::Fcfs)] > avg[idx(Algorithm::GreedyPmtn)]);
}

#[test]
#[ignore = "multi-seed statistical suite; run with: cargo test --release --test paper_claims -- --ignored"]
fn table2_cost_ordering() {
    // Claim (Table II): DYNMCB8 has the highest migration activity;
    // GREEDY-PMTN the lowest (zero migrations by construction);
    // periodic variants sit in between; bandwidths stay technologically
    // feasible (well under ~10 GB/s aggregate).
    let instances = scaled_instances(3, 80, &[0.8], 400);
    let algos = Algorithm::PREEMPTING.to_vec();
    let results = run_matrix(&instances, &algos, 300.0, 1);
    let pos = |a: Algorithm| algos.iter().position(|x| *x == a).unwrap();
    let mut migr_per_job = vec![0.0; algos.len()];
    for row in &results.cells {
        for (i, s) in row.iter().enumerate() {
            migr_per_job[i] += s.migrations_per_job() / results.cells.len() as f64;
        }
    }
    assert_eq!(migr_per_job[pos(Algorithm::GreedyPmtn)], 0.0);
    assert!(
        migr_per_job[pos(Algorithm::DynMcb8)] >= migr_per_job[pos(Algorithm::DynMcb8Per)],
        "event-driven repacking must migrate at least as much as periodic"
    );
    for row in &results.cells {
        for s in row {
            assert!(
                s.preemption_bandwidth_gbs() + s.migration_bandwidth_gbs() < 10.0,
                "{}: implausible bandwidth",
                s.name
            );
        }
    }
}
