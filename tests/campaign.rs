//! Campaign-level guarantees: the parallel runner is a pure
//! parallelization — its result matrix is byte-equal to a
//! single-threaded run — and the observer stream covers every cell
//! exactly once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dfrs::sched::Algorithm;
use dfrs::{Campaign, Scenario, ScenarioBuilder};

fn scenarios() -> Vec<Scenario> {
    (0..2)
        .map(|s| {
            ScenarioBuilder::new()
                .lublin(20)
                .load(0.4)
                .seed(5 + s)
                .build()
                .unwrap()
        })
        .collect()
}

/// Replaces the old `parallel_matches_serial` runner test, now at the
/// byte level over the whole matrix.
#[test]
fn parallel_results_byte_equal_to_single_threaded() {
    let scens = scenarios();
    let specs = ["fcfs", "greedy-pmtn", "dynmcb8-per:T=300"];
    let serial = Campaign::new(&scens, specs).unwrap().penalty(300.0).run();
    let parallel = Campaign::new(&scens, specs)
        .unwrap()
        .penalty(300.0)
        .threads(8)
        .run();
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "thread count changed the deterministic result matrix"
    );
    // And a registry-built parameterized spec really is the enum-built
    // scheduler inside the matrix, too.
    let via_enum = Campaign::from_specs(&scens, vec![Algorithm::DynMcb8Per.spec().with("t", 300)])
        .penalty(300.0)
        .run();
    for (row, full) in via_enum.cells.iter().zip(serial.cells.iter()) {
        assert_eq!(row[0].fingerprint(), full[2].fingerprint());
    }
}

#[test]
fn observer_sees_each_cell_once_with_monotone_progress() {
    let scens = scenarios();
    let counts = Mutex::new(vec![0usize; 2 * 3]);
    let max_done = AtomicUsize::new(0);
    Campaign::over(
        &scens,
        &[Algorithm::Fcfs, Algorithm::Easy, Algorithm::GreedyPmtn],
    )
    .threads(4)
    .on_cell(|u| {
        counts.lock().unwrap()[u.scenario * 3 + u.spec] += 1;
        // Observer calls are serialized, so `done` must strictly grow.
        let prev = max_done.swap(u.done, Ordering::Relaxed);
        assert!(u.done > prev, "done went {prev} -> {}", u.done);
        assert_eq!(u.total, 6);
    })
    .run();
    assert!(counts.lock().unwrap().iter().all(|&c| c == 1));
}

#[test]
fn campaign_config_override_beats_scenario_config() {
    let free = vec![ScenarioBuilder::new()
        .lublin(25)
        .load(0.8)
        .seed(3)
        .build()
        .unwrap()];
    // Scenario config says no penalty; the campaign overrides it on.
    let with_pen = Campaign::over(&free, &[Algorithm::DynMcb8])
        .penalty(300.0)
        .run();
    let without = Campaign::over(&free, &[Algorithm::DynMcb8]).run();
    assert!(with_pen.cells[0][0].max_stretch >= without.cells[0][0].max_stretch);
}
