//! Hand-crafted scenarios with exactly predictable outcomes, spanning
//! the whole stack (specs → scheduler → engine → stretch metrics).

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig, SimOutcome};

fn run(algo: Algorithm, cluster: ClusterSpec, jobs: &[JobSpec], penalty: f64) -> SimOutcome {
    let cfg = SimConfig {
        penalty,
        validate: true,
        ..SimConfig::default()
    };
    simulate(cluster, jobs, algo.build().as_mut(), &cfg)
}

fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
    JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
}

/// The paper's motivating pathology: memory-light, CPU-light jobs that
/// batch scheduling serializes but DFRS runs concurrently at full speed.
#[test]
fn fractional_sharing_eliminates_batch_queueing() {
    let cluster = ClusterSpec::new(4, 4, 8.0).unwrap();
    // Four 4-task sequential-ish jobs: cpu 0.25, mem 0.2 → all four fit
    // on the cluster simultaneously (cpu 1.0, mem 0.8 per node).
    let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0.0, 4, 0.25, 0.2, 1000.0)).collect();

    let batch = run(Algorithm::Fcfs, cluster, &jobs, 0.0);
    // FCFS serializes: completions at 1000, 2000, 3000, 4000.
    assert!((batch.records[3].completion - 4000.0).abs() < 1e-6);
    assert!((batch.max_stretch - 4.0).abs() < 1e-6);

    for algo in [Algorithm::Greedy, Algorithm::GreedyPmtn, Algorithm::DynMcb8] {
        let dfrs = run(algo, cluster, &jobs, 0.0);
        assert_eq!(
            dfrs.max_stretch, 1.0,
            "{algo}: all four should run at yield 1"
        );
    }
}

/// CPU over-subscription slows jobs proportionally and fairly.
#[test]
fn oversubscription_is_proportional() {
    let cluster = ClusterSpec::new(1, 4, 8.0).unwrap();
    // Three CPU-bound single-task jobs on one node, memory 0.3 each.
    let jobs: Vec<JobSpec> = (0..3).map(|i| job(i, 0.0, 1, 1.0, 0.3, 300.0)).collect();
    let out = run(Algorithm::Greedy, cluster, &jobs, 0.0);
    // Equal share: yield 1/3 → everyone completes at 900.
    for r in &out.records {
        assert!((r.completion - 900.0).abs() < 1e-6);
        assert!((r.stretch - 3.0).abs() < 1e-6);
    }
}

/// A short job arriving under memory pressure: GREEDY's backoff makes it
/// wait; GREEDY-PMTN's forced admission gives it near-dedicated service;
/// the stretch gap is exactly the paper's starvation argument.
#[test]
fn forced_admission_rescues_short_jobs() {
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    let jobs = vec![
        job(0, 0.0, 2, 0.25, 1.0, 10_000.0), // memory hog, runs 10000 s
        job(1, 100.0, 1, 0.25, 0.5, 30.0),   // 30 s job
    ];
    let greedy = run(Algorithm::Greedy, cluster, &jobs, 0.0);
    let pmtn = run(Algorithm::GreedyPmtn, cluster, &jobs, 0.0);
    // GREEDY: job 1 backs off until job 0 finishes (~10000 s) →
    // stretch ≈ 10000/30 ≈ 333.
    let g1 = &greedy.records[1];
    assert!(g1.first_start.unwrap() > 10_000.0);
    assert!(g1.stretch > 300.0, "stretch {}", g1.stretch);
    // GREEDY-PMTN: starts at 100 s, stretch 1.
    let p1 = &pmtn.records[1];
    assert!((p1.first_start.unwrap() - 100.0).abs() < 1e-9);
    assert_eq!(p1.stretch, 1.0);
    // And the hog still completes (resumed after job 1).
    assert!((pmtn.records[0].completion - 10_030.0).abs() < 1.0);
}

/// Memory constraints are never violated even under heavy churn.
#[test]
fn memory_is_a_hard_constraint_under_churn() {
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    // Alternating memory-heavy and light jobs forcing constant eviction
    // decisions; validate=true checks every node at every event.
    let mut jobs = Vec::new();
    for i in 0..12u32 {
        let heavy = i % 2 == 0;
        jobs.push(job(
            i,
            (i as f64) * 40.0,
            1 + i % 2,
            if heavy { 0.25 } else { 1.0 },
            if heavy { 0.9 } else { 0.2 },
            120.0,
        ));
    }
    for algo in [
        Algorithm::GreedyPmtnMigr,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8AsapPer,
    ] {
        let out = run(algo, cluster, &jobs, 300.0);
        assert_eq!(out.records.len(), 12, "{algo}");
    }
}

/// EASY's perfect estimates vs DFRS's zero knowledge: the paper's
/// central fairness-of-comparison point — DFRS wins anyway on a
/// backfill-hostile workload.
#[test]
fn clairvoyant_easy_still_loses_on_sharing_friendly_load() {
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    // Stream of 2-node jobs: no backfill holes exist for EASY to exploit
    // (every job needs the whole cluster width). Memory 0.15 × 6 = 0.9
    // per node, so DFRS can host all six jobs simultaneously.
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| job(i, i as f64, 2, 0.25, 0.15, 600.0))
        .collect();
    let easy = run(Algorithm::Easy, cluster, &jobs, 0.0);
    let dfrs = run(Algorithm::DynMcb8, cluster, &jobs, 0.0);
    // EASY: strictly sequential → last job waits ~5×600.
    assert!(easy.max_stretch > 5.0);
    // DFRS: 6 jobs × cpu 0.25 → total load 1.5 per node → min yield ≈
    // 2/3 with improvement → max stretch ≤ 2.
    assert!(dfrs.max_stretch < 2.0, "got {}", dfrs.max_stretch);
}

/// The 30-second bound keeps trivial jobs from dominating the metric.
#[test]
fn bounded_stretch_filters_noise_jobs() {
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    let jobs = vec![
        job(0, 0.0, 2, 1.0, 0.5, 1.0), // 1-second job
        job(1, 0.5, 2, 1.0, 0.5, 600.0),
    ];
    let out = run(Algorithm::Fcfs, cluster, &jobs, 0.0);
    // Job 0 runs immediately (stretch 1); job 1 waits 0.5 s → stretch ~1.
    assert_eq!(out.records[0].stretch, 1.0);
    assert!(out.records[1].stretch < 1.01);

    // Reverse arrival: the 1 s job waits 600 s behind the long one.
    let jobs = vec![
        job(0, 0.0, 2, 1.0, 0.5, 600.0),
        job(1, 0.5, 2, 1.0, 0.5, 1.0),
    ];
    let out = run(Algorithm::Fcfs, cluster, &jobs, 0.0);
    // Unbounded stretch would be ~600/1; bounded: ~600.5/30 ≈ 20.
    assert!((out.records[1].stretch - 600.5 / 30.0).abs() < 0.1);
}
