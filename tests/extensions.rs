//! Integration tests for the features that extend the paper
//! (live migration, fairness damping, conservative backfilling,
//! packer/priority ablations) — the pieces DESIGN.md §6 commits to.

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::sched::dynmcb8::PackerChoice;
use dfrs::sched::{Algorithm, ConservativeBf, DynMcb8AsapPer, DynMcb8FairPer, GreedyPmtn};
use dfrs::sim::{simulate, MigrationMode, SimConfig};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn trace(seed: u64, n: usize, load: f64) -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(load)
        .unwrap()
}

#[test]
fn live_migration_moves_fewer_bytes_than_stop_and_copy() {
    let t = trace(1, 60, 0.8);
    let base = SimConfig {
        penalty: 300.0,
        validate: true,
        ..SimConfig::default()
    };
    let live = SimConfig {
        migration_mode: MigrationMode::Live { freeze_secs: 10.0 },
        ..base.clone()
    };
    let a = simulate(
        t.cluster,
        t.jobs(),
        Algorithm::DynMcb8.build().as_mut(),
        &base,
    );
    let b = simulate(
        t.cluster,
        t.jobs(),
        Algorithm::DynMcb8.build().as_mut(),
        &live,
    );
    if a.migration_count > 0 {
        // Identical decision sequence up to the penalty feedback; on a
        // per-migration basis live moves half the bytes, and overall it
        // must not move more.
        assert!(
            b.migration_gb <= a.migration_gb + 1e-9,
            "live {} GB vs stop-and-copy {} GB",
            b.migration_gb,
            a.migration_gb
        );
        // Cheaper migrations can only help the stretch on average.
        assert!(b.mean_stretch <= a.mean_stretch * 1.5);
    }
}

#[test]
fn fairness_damping_reduces_long_job_dominance() {
    // Construct contention between one marathon job and a stream of
    // short jobs on a small cluster.
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    let j =
        |id: u32, submit: f64, rt: f64| JobSpec::new(JobId(id), submit, 1, 1.0, 0.3, rt).unwrap();
    let mut jobs = vec![j(0, 0.0, 50_000.0), j(1, 0.0, 50_000.0)];
    for i in 0..8u32 {
        jobs.push(j(2 + i, 5_000.0 + 2_000.0 * i as f64, 600.0));
    }
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let plain = simulate(cluster, &jobs, Algorithm::DynMcb8Per.build().as_mut(), &cfg);
    let fair = simulate(
        cluster,
        &jobs,
        &mut DynMcb8FairPer::with_params(600.0, 1_800.0, 1.0),
        &cfg,
    );
    let short_mean =
        |o: &dfrs::sim::SimOutcome| o.records.iter().skip(2).map(|r| r.stretch).sum::<f64>() / 8.0;
    assert!(
        short_mean(&fair) <= short_mean(&plain) + 1e-9,
        "fairness damping should help the short jobs: fair {} vs plain {}",
        short_mean(&fair),
        short_mean(&plain)
    );
}

#[test]
fn conservative_bf_slots_between_fcfs_and_easy_qualitatively() {
    let t = trace(3, 60, 0.8);
    let cfg = SimConfig::default();
    let fcfs = simulate(t.cluster, t.jobs(), Algorithm::Fcfs.build().as_mut(), &cfg);
    let cons = simulate(t.cluster, t.jobs(), &mut ConservativeBf::new(), &cfg);
    // Backfilling (even conservative) must not be worse than plain FIFO
    // on mean stretch for this workload family.
    assert!(
        cons.mean_stretch <= fcfs.mean_stretch + 1e-9,
        "conservative {} vs fcfs {}",
        cons.mean_stretch,
        fcfs.mean_stretch
    );
}

#[test]
fn packer_ablation_runs_through_public_api() {
    let t = trace(4, 50, 0.7);
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    for packer in [
        PackerChoice::Mcb8,
        PackerChoice::FirstFit,
        PackerChoice::BestFit,
    ] {
        let mut s = DynMcb8AsapPer::with_packer(600.0, packer);
        let out = simulate(t.cluster, t.jobs(), &mut s, &cfg);
        assert_eq!(out.records.len(), 50, "{packer:?}");
    }
}

#[test]
fn priority_exponent_changes_pause_victims() {
    // With exponent 2 the long-running job is preferentially paused; a
    // linear priority shifts the balance. At minimum, both run cleanly
    // and produce valid outcomes on a contended workload. The seed picks
    // a trace with enough forced admissions for victim choice to matter.
    let t = trace(31, 50, 0.9);
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let sq = simulate(t.cluster, t.jobs(), &mut GreedyPmtn::new(), &cfg);
    let lin = simulate(
        t.cluster,
        t.jobs(),
        &mut GreedyPmtn::with_priority_exponent(1.0),
        &cfg,
    );
    assert_eq!(sq.records.len(), lin.records.len());
    // The paper's claim (square markedly better) is statistical; at this
    // scale assert only that the configurations are actually distinct in
    // behaviour on a contended trace.
    let same_everything = sq.max_stretch == lin.max_stretch
        && sq.preemption_count == lin.preemption_count
        && sq.mean_stretch == lin.mean_stretch;
    assert!(
        !same_everything || sq.preemption_count == 0,
        "exponent had no observable effect despite {} preemptions",
        sq.preemption_count
    );
}

#[test]
fn daily_cycle_workloads_simulate_cleanly() {
    use dfrs::workload::lublin::LublinParams;
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::new(LublinParams::for_cluster_with_daily_cycle(cluster.nodes));
    let mut rng = SmallRng::seed_from_u64(6);
    let raws = model.generate(80, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let t = Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(0.7)
        .unwrap();
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let out = simulate(
        t.cluster,
        t.jobs(),
        Algorithm::DynMcb8AsapPer.build().as_mut(),
        &cfg,
    );
    assert_eq!(out.records.len(), 80);
}
