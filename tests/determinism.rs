//! Deterministic-replay guarantees: the same `ClusterSpec`, workload and
//! seed must reproduce the same `SimOutcome` run over run, for every
//! algorithm family. Without this property no experiment in the paper
//! harness is reproducible, so it is pinned here byte-for-byte.
//!
//! The wall-clock bookkeeping fields (`sched_wall_total`,
//! `sched_wall_max` and the `wall_secs` half of each `DecisionSample`)
//! measure real scheduler compute time and legitimately vary between
//! runs; everything else must be identical.

use dfrs::core::ClusterSpec;
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig, SimOutcome};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn seeded_trace(seed: u64, n: usize, load: f64) -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(load)
        .unwrap()
}

/// Everything deterministic about an outcome, rendered to bytes.
/// Floats go through `to_bits` so `-0.0 == 0.0` and rounding noise can
/// not mask a drift.
fn fingerprint(o: &SimOutcome) -> String {
    let mut s = String::new();
    s.push_str(&o.algorithm);
    s.push('\n');
    s.push_str(&dfrs::sim::export::records_to_csv(o));
    s.push_str(&format!(
        "max={:016x} mean={:016x} makespan={:016x} pre={} migr={} pre_gb={:016x} migr_gb={:016x} \
         idle={:016x} busy={:016x} calls={}\n",
        o.max_stretch.to_bits(),
        o.mean_stretch.to_bits(),
        o.makespan.to_bits(),
        o.preemption_count,
        o.migration_count,
        o.preemption_gb.to_bits(),
        o.migration_gb.to_bits(),
        o.idle_node_seconds.to_bits(),
        o.busy_node_seconds.to_bits(),
        o.sched_calls,
    ));
    // The decision sizes (not their wall-clock timings) are part of the
    // deterministic decision sequence.
    for d in &o.decisions {
        s.push_str(&format!("decision jobs={}\n", d.jobs_in_system));
    }
    s.push_str(&format!("{:?}\n", o.timeline));
    s
}

#[test]
fn same_seed_same_outcome_for_every_algorithm() {
    let trace = seeded_trace(17, 60, 0.8);
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    for algo in Algorithm::ALL {
        let a = simulate(trace.cluster, trace.jobs(), algo.build().as_mut(), &cfg);
        let b = simulate(trace.cluster, trace.jobs(), algo.build().as_mut(), &cfg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} replay diverged on identical input",
            algo.name()
        );
    }
}

#[test]
fn same_seed_same_outcome_with_penalty_and_fresh_workload() {
    // Regenerate the workload from scratch both times: generation and
    // simulation must BOTH replay exactly from the seed alone.
    let cfg = SimConfig {
        penalty: 300.0,
        ..SimConfig::default()
    };
    let run = || {
        let t = seeded_trace(23, 50, 0.9);
        let out = simulate(
            t.cluster,
            t.jobs(),
            Algorithm::DynMcb8AsapPer.build().as_mut(),
            &cfg,
        );
        fingerprint(&out)
    };
    assert_eq!(
        run(),
        run(),
        "workload generation + simulation replay diverged"
    );
}

#[test]
fn registry_spec_reproduces_enum_built_scheduler_byte_identically() {
    // The acceptance bar for the registry redesign: a spec-built
    // scheduler is the same scheduler, not a near-copy. T = 300 is
    // deliberately NOT the default period, so a dropped parameter
    // would show up immediately.
    let trace = seeded_trace(29, 60, 0.8);
    let cfg = SimConfig {
        penalty: 300.0,
        validate: true,
        ..SimConfig::default()
    };
    let registry = dfrs::SchedulerRegistry::builtin();
    for (spec, algo, period) in [
        ("dynmcb8-per:T=300", Algorithm::DynMcb8Per, 300.0),
        ("dynmcb8-asap-per:T=300", Algorithm::DynMcb8AsapPer, 300.0),
        (
            "dynmcb8-stretch-per-600",
            Algorithm::DynMcb8StretchPer,
            600.0,
        ),
        ("greedy-pmtn", Algorithm::GreedyPmtn, 600.0),
        ("FCFS", Algorithm::Fcfs, 600.0),
    ] {
        let via_registry = simulate(
            trace.cluster,
            trace.jobs(),
            registry.build_str(spec).unwrap().as_mut(),
            &cfg,
        );
        let via_enum = simulate(
            trace.cluster,
            trace.jobs(),
            algo.build_with_period(period).as_mut(),
            &cfg,
        );
        assert_eq!(
            fingerprint(&via_registry),
            fingerprint(&via_enum),
            "registry spec {spec} diverged from {algo:?} with T={period}"
        );
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against fingerprint() degenerating into a constant.
    let cfg = SimConfig::default();
    let a = seeded_trace(1, 40, 0.7);
    let b = seeded_trace(2, 40, 0.7);
    let fa = fingerprint(&simulate(
        a.cluster,
        a.jobs(),
        Algorithm::GreedyPmtn.build().as_mut(),
        &cfg,
    ));
    let fb = fingerprint(&simulate(
        b.cluster,
        b.jobs(),
        Algorithm::GreedyPmtn.build().as_mut(),
        &cfg,
    ));
    assert_ne!(fa, fb, "distinct seeds produced identical outcomes");
}
