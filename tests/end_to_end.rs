//! End-to-end pipeline tests: workload generation → annotation → load
//! scaling → simulation → metrics, across all nine algorithms.

use dfrs::core::ClusterSpec;
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig, SimOutcome};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn trace(seed: u64, n: usize, load: f64) -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(load)
        .unwrap()
}

fn run(algo: Algorithm, t: &Trace, penalty: f64) -> SimOutcome {
    let cfg = SimConfig {
        penalty,
        validate: true,
        ..SimConfig::default()
    };
    simulate(t.cluster, t.jobs(), algo.build().as_mut(), &cfg)
}

#[test]
fn full_pipeline_all_algorithms_complete() {
    let t = trace(1, 80, 0.6);
    for algo in Algorithm::ALL {
        let out = run(algo, &t, 300.0);
        assert_eq!(out.records.len(), 80, "{algo}");
        assert!(out.max_stretch >= 1.0, "{algo}");
        assert!(out.makespan > 0.0, "{algo}");
        // Every record is consistent.
        for r in &out.records {
            assert!(
                r.completion >= r.submit,
                "{algo}: job finished before submission"
            );
            if let Some(s) = r.first_start {
                assert!(s >= r.submit && s <= r.completion, "{algo}");
            }
        }
    }
}

#[test]
fn determinism_across_identical_runs() {
    let t = trace(2, 50, 0.7);
    for algo in [
        Algorithm::DynMcb8AsapPer,
        Algorithm::GreedyPmtnMigr,
        Algorithm::Easy,
    ] {
        let a = run(algo, &t, 300.0);
        let b = run(algo, &t, 300.0);
        assert_eq!(a.records, b.records, "{algo}");
        assert_eq!(a.preemption_gb, b.preemption_gb, "{algo}");
        assert_eq!(a.migration_gb, b.migration_gb, "{algo}");
    }
}

#[test]
fn dfrs_dramatically_outperforms_batch_at_high_load() {
    // The headline claim of the paper on a small instance (avg over 3
    // seeds): the best periodic DFRS algorithm achieves a max stretch
    // several times lower than EASY with perfect estimates.
    let mut ratio_sum = 0.0;
    for seed in 0..3 {
        let t = trace(10 + seed, 80, 0.8);
        let easy = run(Algorithm::Easy, &t, 300.0).max_stretch;
        let dfrs = run(Algorithm::DynMcb8AsapPer, &t, 300.0).max_stretch;
        ratio_sum += easy / dfrs;
    }
    let avg_ratio = ratio_sum / 3.0;
    assert!(
        avg_ratio > 3.0,
        "expected EASY/DFRS max-stretch ratio ≫ 1, got {avg_ratio:.2}"
    );
}

#[test]
fn penalty_only_hurts_algorithms_that_move_jobs() {
    let t = trace(5, 60, 0.7);
    for algo in [Algorithm::Fcfs, Algorithm::Easy, Algorithm::Greedy] {
        let no_pen = run(algo, &t, 0.0);
        let pen = run(algo, &t, 300.0);
        assert_eq!(
            no_pen.max_stretch, pen.max_stretch,
            "{algo} never moves jobs, so the penalty must be invisible"
        );
    }
    // DYNMCB8 moves aggressively: the penalty must show up somewhere
    // (max or mean stretch strictly worse).
    let no_pen = run(Algorithm::DynMcb8, &t, 0.0);
    let pen = run(Algorithm::DynMcb8, &t, 300.0);
    assert!(
        pen.max_stretch > no_pen.max_stretch || pen.mean_stretch > no_pen.mean_stretch,
        "a 5-minute penalty should degrade DYNMCB8 (max {} vs {}, mean {} vs {})",
        pen.max_stretch,
        no_pen.max_stretch,
        pen.mean_stretch,
        no_pen.mean_stretch
    );
}

#[test]
fn bandwidth_accounting_is_consistent_with_counts() {
    let t = trace(6, 60, 0.8);
    for algo in Algorithm::PREEMPTING {
        let out = run(algo, &t, 300.0);
        if out.preemption_count == 0 {
            assert_eq!(out.preemption_gb, 0.0, "{algo}");
        }
        if out.migration_count == 0 {
            assert_eq!(out.migration_gb, 0.0, "{algo}");
        } else {
            assert!(out.migration_gb > 0.0, "{algo}: migrations moved no bytes?");
        }
    }
}

#[test]
fn mean_stretch_never_exceeds_max() {
    let t = trace(7, 70, 0.9);
    for algo in Algorithm::ALL {
        let out = run(algo, &t, 300.0);
        assert!(out.mean_stretch <= out.max_stretch + 1e-9, "{algo}");
        assert!(out.mean_stretch >= 1.0, "{algo}");
    }
}

#[test]
fn idle_plus_busy_bounded_by_cluster_capacity() {
    let t = trace(8, 50, 0.5);
    for algo in [
        Algorithm::Easy,
        Algorithm::DynMcb8Per,
        Algorithm::GreedyPmtn,
    ] {
        let out = run(algo, &t, 300.0);
        let capacity = t.cluster.nodes as f64 * out.makespan;
        assert!(
            out.busy_node_seconds <= capacity + 1e-6,
            "{algo}: allocated more CPU than exists"
        );
        assert!(out.idle_node_seconds <= capacity + 1e-6, "{algo}");
    }
}
