//! Trace replay: run the full SWF → HPC2N-preprocessing → simulation
//! pipeline, exactly the code path a real archive trace would take.
//!
//! ```sh
//! cargo run --release --example trace_replay [path/to/trace.swf]
//! ```
//!
//! Without an argument, a week of HPC2N-like records is synthesized,
//! written to SWF text, and parsed back — demonstrating the round trip.

use dfrs::core::ClusterSpec;
use dfrs::workload::{hpc2n_preprocess, parse_swf, write_swf, Hpc2nLikeGenerator};
use dfrs::ScenarioBuilder;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            println!("replaying {path}");
            std::fs::read_to_string(&path).expect("cannot read SWF file")
        }
        None => {
            println!("no SWF given; synthesizing one HPC2N-like week");
            let mut rng = SmallRng::seed_from_u64(99);
            let gen = Hpc2nLikeGenerator {
                jobs_per_week: 250.0,
                ..Default::default()
            };
            let records = gen.generate_swf(1, &mut rng);
            let header = vec![
                ("Computer".to_string(), "HPC2N-like synthetic".to_string()),
                ("MaxNodes".to_string(), "120".to_string()),
            ];
            write_swf(&header, &records)
        }
    };

    let (header, records) = parse_swf(&text).expect("SWF parse failed");
    for (k, v) in &header {
        println!("; {k}: {v}");
    }
    println!("{} records parsed", records.len());

    // The paper's HPC2N rules: pair even-processor low-memory jobs into
    // multi-threaded tasks; everything else is one single-core task per
    // processor. (ScenarioBuilder::swf_text runs the same preprocessing
    // but splits into one-week scenarios; here the whole span replays
    // as one.)
    let cluster = ClusterSpec::hpc2n();
    let trace = hpc2n_preprocess(&records, cluster);
    println!(
        "{} schedulable jobs, span {:.1} h, offered load {:.2}",
        trace.len(),
        trace.span() / 3600.0,
        trace.offered_load()
    );

    let scenario = ScenarioBuilder::new()
        .label("trace-replay")
        .cluster(cluster)
        .jobs(trace.jobs().to_vec())
        .penalty(300.0)
        .build()
        .expect("preprocessed traces are valid");
    for spec in ["easy", "greedy-pmtn", "dynmcb8-asap-per"] {
        let out = scenario.run(spec).expect("built-in spec");
        println!(
            "{:<22} max stretch {:>10.2}   mean {:>7.2}   makespan {:>7.1} h",
            out.algorithm,
            out.max_stretch,
            out.mean_stretch,
            out.makespan / 3600.0,
        );
    }
}
