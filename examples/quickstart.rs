//! Quickstart: generate a small synthetic workload with the
//! `ScenarioBuilder`, schedule it with a DFRS algorithm and with EASY
//! backfilling, and compare stretches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dfrs::ScenarioBuilder;

fn main() {
    // One fluent chain replaces the old generate → annotate → scale →
    // simulate pipeline: 200 jobs from the Lublin-Feitelson model on the
    // paper's 128-node quad-core cluster, rescaled to offered load 0.7,
    // with the pessimistic 5-minute rescheduling penalty.
    let scenario = ScenarioBuilder::new()
        .label("quickstart")
        .lublin(200)
        .load(0.7)
        .seed(2026)
        .penalty(300.0)
        .build()
        .expect("the Lublin model always yields a valid trace");

    let trace = scenario.trace();
    println!(
        "workload: {} jobs, span {:.1} h, offered load {:.2}",
        trace.len(),
        trace.span() / 3600.0,
        trace.offered_load()
    );

    // Any spec the scheduler registry knows runs by name — including
    // parameterized variants like "dynmcb8-asap-per:t=300".
    for spec in ["easy", "dynmcb8-asap-per"] {
        let out = scenario.run(spec).expect("built-in spec");
        println!(
            "{:<22} max stretch {:>10.2}   mean stretch {:>7.2}   pmtn {:>4}   migr {:>4}",
            out.algorithm,
            out.max_stretch,
            out.mean_stretch,
            out.preemption_count,
            out.migration_count,
        );
    }
    println!("\n(DFRS needs no runtime estimates; EASY was given perfect ones.)");
}
