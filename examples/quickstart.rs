//! Quickstart: generate a small synthetic workload, schedule it with a
//! DFRS algorithm and with EASY backfilling, and compare stretches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dfrs::core::ClusterSpec;
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A 128-node quad-core cluster, as in the paper's synthetic setup.
    let cluster = ClusterSpec::synthetic();

    // 2. Generate 200 jobs from the Lublin-Feitelson model, annotate them
    //    with CPU needs (25 % for sequential tasks, 100 % otherwise) and
    //    memory requirements (55 % light / 45 % heavy), and rescale the
    //    arrival gaps to an offered load of 0.7.
    let mut rng = SmallRng::seed_from_u64(2026);
    let model = LublinModel::for_cluster(&cluster);
    let raws = model.generate(200, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(0.7)
        .unwrap();
    println!(
        "workload: {} jobs, span {:.1} h, offered load {:.2}",
        trace.len(),
        trace.span() / 3600.0,
        trace.offered_load()
    );

    // 3. Run two schedulers over the same trace with the pessimistic
    //    5-minute rescheduling penalty.
    let config = SimConfig::with_penalty();
    for algo in [Algorithm::Easy, Algorithm::DynMcb8AsapPer] {
        let out = simulate(cluster, trace.jobs(), algo.build().as_mut(), &config);
        println!(
            "{:<22} max stretch {:>10.2}   mean stretch {:>7.2}   pmtn {:>4}   migr {:>4}",
            out.algorithm,
            out.max_stretch,
            out.mean_stretch,
            out.preemption_count,
            out.migration_count,
        );
    }
    println!("\n(DFRS needs no runtime estimates; EASY was given perfect ones.)");
}
