//! Period ablation: the paper states (Section III-B) that T = 600 s is
//! small enough to match T = 60 s quality and large enough to match
//! T = 3600 s overhead. This example reruns that sweep through the
//! scheduler registry — each period is just a spec string.
//!
//! ```sh
//! cargo run --release --example period_ablation
//! ```

use dfrs::{Campaign, ScenarioBuilder};

fn main() {
    let scenarios = vec![ScenarioBuilder::new()
        .label("period-ablation")
        .lublin(300)
        .load(0.7)
        .seed(31)
        .penalty(300.0)
        .build()
        .expect("the Lublin model always yields a valid trace")];

    let specs: Vec<String> = [60.0, 150.0, 300.0, 600.0, 1800.0, 3600.0]
        .iter()
        .map(|t| format!("dynmcb8-asap-per:t={t}"))
        .collect();

    println!("DynMCB8-asap-per under different periods (load 0.7, penalty 300 s)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>8} {:>14}",
        "T (s)", "max stretch", "mean stretch", "pmtn", "migr", "moved GB total"
    );
    let result = Campaign::new(&scenarios, &specs)
        .expect("periodic specs are built in")
        .run();
    for (spec, cell) in specs.iter().zip(result.cells[0].iter()) {
        let period = spec.rsplit('=').next().unwrap();
        println!(
            "{period:>8} {:>12.2} {:>12.2} {:>8} {:>8} {:>14.1}",
            cell.max_stretch,
            cell.mean_stretch,
            cell.preemption_count,
            cell.migration_count,
            cell.moved_gb(),
        );
    }
    println!("\nPeriods at or below the 300 s penalty thrash, as the paper observed.");
}
