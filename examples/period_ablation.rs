//! Period ablation: the paper states (Section III-B) that T = 600 s is
//! small enough to match T = 60 s quality and large enough to match
//! T = 3600 s overhead. This example reruns that sweep.
//!
//! ```sh
//! cargo run --release --example period_ablation
//! ```

use dfrs::core::ClusterSpec;
use dfrs::sched::DynMcb8AsapPer;
use dfrs::sim::{simulate, SimConfig};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let cluster = ClusterSpec::synthetic();
    let mut rng = SmallRng::seed_from_u64(31);
    let model = LublinModel::for_cluster(&cluster);
    let raws = model.generate(300, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(0.7)
        .unwrap();

    println!("DynMCB8-asap-per under different periods (load 0.7, penalty 300 s)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>8} {:>14}",
        "T (s)", "max stretch", "mean stretch", "pmtn", "migr", "moved GB total"
    );
    let config = SimConfig::with_penalty();
    for period in [60.0, 150.0, 300.0, 600.0, 1800.0, 3600.0] {
        let mut sched = DynMcb8AsapPer::with_period(period);
        let out = simulate(cluster, trace.jobs(), &mut sched, &config);
        println!(
            "{period:>8.0} {:>12.2} {:>12.2} {:>8} {:>8} {:>14.1}",
            out.max_stretch,
            out.mean_stretch,
            out.preemption_count,
            out.migration_count,
            out.preemption_gb + out.migration_gb,
        );
    }
    println!("\nPeriods at or below the 300 s penalty thrash, as the paper observed.");
}
