//! Saturation study: how one scheduler degrades as offered load climbs
//! from 0.1 to 1.2, reporting max stretch, utilization, and the idle
//! node-hours the paper's energy note (Section II-B2) would reclaim by
//! powering nodes down.
//!
//! ```sh
//! cargo run --release --example saturation [algorithm]
//! ```

use dfrs::core::ClusterSpec;
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let algo = std::env::args()
        .nth(1)
        .and_then(|s| Algorithm::parse(&s))
        .unwrap_or(Algorithm::DynMcb8AsapPer);

    let cluster = ClusterSpec::synthetic();
    let mut rng = SmallRng::seed_from_u64(7);
    let model = LublinModel::for_cluster(&cluster);
    let raws = model.generate(250, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let base = Trace::new(cluster, jobs).unwrap();

    println!(
        "{} under increasing load (250 jobs, penalty 300 s)\n",
        algo.name()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>16}",
        "load", "max stretch", "mean stretch", "utilization", "idle node-hours"
    );
    let config = SimConfig::with_penalty();
    for load in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2] {
        let trace = base.scale_to_load(load).unwrap();
        let out = simulate(cluster, trace.jobs(), algo.build().as_mut(), &config);
        // Utilization: allocated CPU integral over total node-time.
        let node_time = cluster.nodes as f64 * out.makespan;
        println!(
            "{load:>5.1} {:>12.2} {:>12.2} {:>13.1}% {:>16.1}",
            out.max_stretch,
            out.mean_stretch,
            100.0 * out.busy_node_seconds / node_time,
            out.idle_node_seconds / 3600.0,
        );
    }
    println!("\nIdle node-hours bound the energy-saving opportunity of powering nodes down.");
}
