//! Saturation study: how one scheduler degrades as offered load climbs
//! from 0.1 to 1.2, reporting max stretch, utilization, and the idle
//! node-hours the paper's energy note (Section II-B2) would reclaim by
//! powering nodes down.
//!
//! ```sh
//! cargo run --release --example saturation [scheduler-spec]
//! ```

use dfrs::ScenarioBuilder;

fn main() {
    // Any registry spec works here: `greedy-pmtn`, `dynmcb8-per:t=60`,
    // the paper-table names, ...
    let spec = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dynmcb8-asap-per".to_string());

    println!("{spec} under increasing load (250 jobs, penalty 300 s)\n");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>16}",
        "load", "max stretch", "mean stretch", "utilization", "idle node-hours"
    );
    for load in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2] {
        let scenario = ScenarioBuilder::new()
            .lublin(250)
            .load(load)
            .seed(7)
            .penalty(300.0)
            .build()
            .expect("the Lublin model always yields a valid trace");
        let out = match scenario.run(&spec) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        // Utilization: allocated CPU integral over total node-time.
        let node_time = scenario.cluster.nodes as f64 * out.makespan;
        println!(
            "{load:>5.1} {:>12.2} {:>12.2} {:>13.1}% {:>16.1}",
            out.max_stretch,
            out.mean_stretch,
            100.0 * out.busy_node_seconds / node_time,
            out.idle_node_seconds / 3600.0,
        );
    }
    println!("\nIdle node-hours bound the energy-saving opportunity of powering nodes down.");
}
