//! Algorithm shootout: all nine schedulers on one trace via a
//! `Campaign`, ranked by the paper's headline metric (max bounded
//! stretch).
//!
//! ```sh
//! cargo run --release --example shootout [load] [jobs] [seed]
//! ```

use dfrs::sched::Algorithm;
use dfrs::{Campaign, ScenarioBuilder};

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let scenarios = vec![ScenarioBuilder::new()
        .label("shootout")
        .lublin(jobs)
        .load(load)
        .seed(seed)
        .penalty(300.0)
        .build()
        .expect("the Lublin model always yields a valid trace")];

    println!("load {load}, {jobs} jobs, seed {seed}, penalty 300 s\n");
    let result = Campaign::over(&scenarios, &Algorithm::ALL)
        .threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
        .run();

    let mut rows: Vec<&dfrs::CellResult> = result.cells[0].iter().collect();
    rows.sort_by(|a, b| a.max_stretch.total_cmp(&b.max_stretch));
    let best = rows[0].max_stretch;
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>6} {:>6}",
        "algorithm", "max stretch", "degradation", "mean stretch", "pmtn", "migr"
    );
    for cell in rows {
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>12.2} {:>6} {:>6}",
            cell.name,
            cell.max_stretch,
            cell.max_stretch / best,
            cell.mean_stretch,
            cell.preemption_count,
            cell.migration_count
        );
    }
}
