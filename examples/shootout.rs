//! Algorithm shootout: all nine schedulers on one trace, ranked by the
//! paper's headline metric (max bounded stretch).
//!
//! ```sh
//! cargo run --release --example shootout [load] [jobs] [seed]
//! ```

use dfrs::core::{ClusterSpec, OnlineStats};
use dfrs::sched::Algorithm;
use dfrs::sim::{simulate, SimConfig};
use dfrs::workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let cluster = ClusterSpec::synthetic();
    let mut rng = SmallRng::seed_from_u64(seed);
    let model = LublinModel::for_cluster(&cluster);
    let raws = model.generate(jobs, &mut rng);
    let specs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, specs)
        .unwrap()
        .scale_to_load(load)
        .unwrap();

    println!("load {load}, {jobs} jobs, seed {seed}, penalty 300 s\n");
    let config = SimConfig::with_penalty();
    let mut rows: Vec<(String, f64, f64, u64, u64)> = Vec::new();
    for algo in Algorithm::ALL {
        let out = simulate(cluster, trace.jobs(), algo.build().as_mut(), &config);
        let stretches: OnlineStats = out.records.iter().map(|r| r.stretch).collect();
        rows.push((
            out.algorithm.clone(),
            out.max_stretch,
            stretches.mean(),
            out.preemption_count,
            out.migration_count,
        ));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best = rows[0].1;
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>6} {:>6}",
        "algorithm", "max stretch", "degradation", "mean stretch", "pmtn", "migr"
    );
    for (name, max, mean, p, m) in rows {
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>12.2} {:>6} {:>6}",
            name,
            max,
            max / best,
            mean,
            p,
            m
        );
    }
}
