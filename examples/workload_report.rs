//! Workload characterization report: the Section IV statistics for the
//! two synthetic families, before any scheduling happens.
//!
//! ```sh
//! cargo run --release --example workload_report [seed]
//! ```

use dfrs::core::ClusterSpec;
use dfrs::workload::{profile, Annotator, Hpc2nLikeGenerator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!("=== Lublin synthetic trace (128-node quad-core cluster) ===");
    let cluster = ClusterSpec::synthetic();
    let mut rng = SmallRng::seed_from_u64(seed);
    let model = LublinModel::for_cluster(&cluster);
    let raws = model.generate(1_000, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs).unwrap();
    print!("{}", profile(&trace).render());

    println!("\n    after rescaling to offered load 0.7:");
    let scaled = trace.scale_to_load(0.7).unwrap();
    print!("{}", profile(&scaled).render());

    println!("\n=== HPC2N-like week (120-node dual-core cluster) ===");
    let gen = Hpc2nLikeGenerator::default();
    let weeks = gen.generate_weeks(2, &mut rng);
    print!("{}", profile(&weeks[0]).render());

    println!("\nThe signature differences the paper leans on:");
    println!("  - synthetic: ~24% serial jobs, heavy parallel tail (bin-packing friendly)");
    println!("  - HPC2N:     ~70% serial with many sub-minute jobs (greedy friendly)");
}
