//! Timeline view: record every allocation decision of a DFRS schedule
//! and render an ASCII lane chart plus the running-jobs profile.
//!
//! ```sh
//! cargo run --release --example timeline_view
//! ```

use dfrs::core::ids::JobId;
use dfrs::core::{ClusterSpec, JobSpec};
use dfrs::sim::SimConfig;
use dfrs::ScenarioBuilder;

fn main() {
    // A tiny contrived workload on 2 nodes that forces pausing and
    // yield adjustments: a memory hog, a stream of small jobs, and a
    // late wide job.
    let j = |id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64| {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    };
    let scenario = ScenarioBuilder::new()
        .label("timeline-view")
        .cluster(ClusterSpec::new(2, 4, 8.0).unwrap())
        .jobs(vec![
            j(0, 0.0, 2, 0.25, 0.9, 900.0),  // memory hog on both nodes
            j(1, 60.0, 1, 1.0, 0.4, 120.0),  // forces a pause of job 0
            j(2, 120.0, 1, 1.0, 0.4, 120.0), //
            j(3, 400.0, 2, 1.0, 0.5, 300.0), // wide job
            j(4, 800.0, 1, 0.25, 0.1, 60.0), // small late job
        ])
        .config(SimConfig {
            record_timeline: true,
            validate: true,
            ..SimConfig::default()
        })
        .build()
        .expect("crafted jobs are valid");

    let out = scenario.run("greedy-pmtn-migr").expect("built-in spec");

    println!(
        "algorithm: {}   max stretch: {:.2}\n",
        out.algorithm, out.max_stretch
    );
    println!(
        "lane chart over {:.0} s ('#' running, '.' paused):\n",
        out.makespan
    );
    print!("{}", out.timeline.render_ascii(out.makespan, 72));

    println!("\nrunning-jobs profile (time, jobs):");
    for (t, r) in out.timeline.utilization_profile() {
        println!("  {t:>7.0} s  {}", "*".repeat(r as usize));
    }

    println!("\nper-job event log:");
    for rec in &out.records {
        let events: Vec<String> = out
            .timeline
            .for_job(rec.id)
            .map(|e| format!("{:?}@{:.0}", std::mem::discriminant(&e.event), e.time))
            .collect();
        println!(
            "  {}: {} events, stretch {:.2}",
            rec.id,
            events.len(),
            rec.stretch
        );
    }
}
